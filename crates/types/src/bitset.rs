//! A dense, reusable bit set keyed by small integer ids.
//!
//! [`Oid`](crate::Oid)s are handed out densely (`0, 1, 2, ...`) and never
//! reused, so any per-object set the simulator maintains — the oracle's
//! live/garbage sets, the full collector's mark set — can be a flat bit
//! vector indexed by `Oid::index()` instead of a hashed set. Membership
//! tests become a shift and a mask, and a set that is reused across oracle
//! passes ([`DenseBitSet::clear`] keeps the allocation) costs no
//! per-pass allocation at all.

/// A growable bit set over `u64` indices.
///
/// ```
/// use pgc_types::DenseBitSet;
///
/// let mut s = DenseBitSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(3));
/// assert!(!s.contains(64));
/// assert_eq!(s.len(), 1);
/// s.clear();
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with room for indices `0..bits` preallocated.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every member, keeping the backing allocation for reuse.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Ensures indices `0..bits` can be stored without reallocating.
    pub fn reserve(&mut self, bits: usize) {
        let need = bits.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Inserts `bit`, growing as needed. Returns true if it was absent.
    #[inline]
    pub fn insert(&mut self, bit: u64) -> bool {
        let word = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let w = &mut self.words[word];
        let absent = *w & mask == 0;
        *w |= mask;
        self.len += absent as usize;
        absent
    }

    /// Removes `bit`. Returns true if it was present.
    #[inline]
    pub fn remove(&mut self, bit: u64) -> bool {
        let word = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        match self.words.get_mut(word) {
            Some(w) if *w & mask != 0 => {
                *w &= !mask;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, bit: u64) -> bool {
        self.words
            .get((bit / 64) as usize)
            .is_some_and(|w| w & (1 << (bit % 64)) != 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = i as u64 * 64;
            BitIter { word: w, base }
        })
    }
}

struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz as u64)
    }
}

impl FromIterator<u64> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = Self::new();
        for bit in iter {
            s.insert(bit);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::new();
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert!(!s.insert(64), "double insert reports present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(1000));
        assert!(!s.contains(1));
        assert!(!s.contains(10_000), "out of range is absent, not a panic");
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.remove(5000), "removing out of range is a no-op");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DenseBitSet::with_capacity(512);
        let words_before = s.words.len();
        for i in 0..512 {
            s.insert(i);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.words.len(), words_before);
        assert!(!s.contains(17));
    }

    #[test]
    fn iter_is_ascending_and_complete() {
        let members = [0u64, 1, 63, 64, 65, 127, 128, 500];
        let s: DenseBitSet = members.iter().copied().collect();
        let got: Vec<u64> = s.iter().collect();
        assert_eq!(got, members);
    }

    #[test]
    fn reserve_does_not_change_membership() {
        let mut s = DenseBitSet::new();
        s.insert(10);
        s.reserve(10_000);
        assert_eq!(s.len(), 1);
        assert!(s.contains(10));
        assert!(!s.contains(9_999));
    }

    #[test]
    fn matches_reference_hashset_under_random_ops() {
        use crate::SimRng;
        use std::collections::HashSet;
        let mut rng = SimRng::new(99);
        let mut dense = DenseBitSet::new();
        let mut reference: HashSet<u64> = HashSet::new();
        for _ in 0..5000 {
            let bit = rng.below(700);
            match rng.below(3) {
                0 | 1 => assert_eq!(dense.insert(bit), reference.insert(bit)),
                _ => assert_eq!(dense.remove(bit), reference.remove(&bit)),
            }
            assert_eq!(dense.len(), reference.len());
        }
        let mut sorted: Vec<u64> = reference.into_iter().collect();
        sorted.sort_unstable();
        assert_eq!(dense.iter().collect::<Vec<u64>>(), sorted);
    }
}
