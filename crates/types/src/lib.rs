//! # pgc-types
//!
//! Foundation types shared by every crate in the `pgc` workspace: strongly
//! typed identifiers ([`Oid`], [`PartitionId`], [`PageId`], [`SlotId`]),
//! byte/page unit arithmetic ([`units`]), the simulation configuration
//! ([`DbConfig`]), error types, and a deterministic seeded random number
//! generator used everywhere randomness is needed so that experiments are
//! reproducible run-to-run.
//!
//! Nothing in this crate knows about objects, partitions-as-data-structures,
//! or garbage collection; it only provides the vocabulary the rest of the
//! system is written in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod config;
pub mod error;
pub mod fast_hash;
pub mod ids;
pub mod parallel;
pub mod rng;
pub mod units;

pub use bitset::DenseBitSet;
pub use config::{DbConfig, PlacementPolicy};
pub use error::{PgcError, Result};
pub use fast_hash::{fast_hash_u64, FastHashMap, FastHashSet, FxBuildHasher, FxHasher};
pub use ids::{Oid, PageId, PartitionId, PointerLoc, SlotId};
pub use parallel::{AtomicBitSet, Parallelism};
pub use rng::SimRng;
pub use units::{Bytes, PageCount, DEFAULT_PAGE_SIZE};
