//! A fast, non-cryptographic hasher for the maps that must stay sparse.
//!
//! The simulator's hot maps keyed by dense ids are slabs or bit sets (see
//! [`crate::bitset`]), but the remembered sets are genuinely sparse — most
//! objects are never the target of a cross-partition pointer — so they stay
//! hash maps. The standard library's default SipHash-1-3 is keyed and
//! DoS-resistant, which simulation state does not need; this FxHash-style
//! multiply-rotate hasher (the scheme rustc itself uses for its interner
//! maps) is several times faster on `u64`-shaped keys and, being unkeyed,
//! makes map iteration order stable across processes and threads.
//!
//! No external dependency: the whole hasher is a dozen lines.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio, as used by FxHash.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64` folded with rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// Builder for [`FxHasher`] (zero-sized, unkeyed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FastHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one `u64` directly (for ad-hoc mixing without a map).
#[inline]
pub fn fast_hash_u64(v: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(v);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Oid, PointerLoc, SlotId};

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastHashMap<Oid, u32> = FastHashMap::default();
        for i in 0..1000 {
            m.insert(Oid(i), i as u32 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&Oid(17)), Some(&34));
        let mut s: FastHashSet<PointerLoc> = FastHashSet::default();
        assert!(s.insert(PointerLoc::new(Oid(1), SlotId(0))));
        assert!(!s.insert(PointerLoc::new(Oid(1), SlotId(0))));
        assert!(s.contains(&PointerLoc::new(Oid(1), SlotId(0))));
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        assert_eq!(fast_hash_u64(42), fast_hash_u64(42));
        let hashes: std::collections::HashSet<u64> = (0..10_000u64).map(fast_hash_u64).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on sequential ids");
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Differ-length inputs padding to the same word is acceptable for
        // our use (fixed-width keys); this just pins the behavior.
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[3, 2, 1]);
        assert_ne!(a.finish(), c.finish());
    }
}
