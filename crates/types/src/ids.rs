//! Strongly typed identifiers.
//!
//! The simulator manipulates four kinds of entities that are all "just
//! integers" underneath: objects, partitions, pages, and pointer slots
//! within an object. Newtype wrappers keep them from being confused for one
//! another and give each a self-describing `Display` form (`o#42`, `P3`,
//! `pg#1027`, `s2`) that shows up in logs, error messages, and test output.

use std::fmt;

/// A stable object identifier.
///
/// An [`Oid`] names an object for its whole lifetime; it never changes when
/// the copying collector relocates the object, and it is never reused after
/// the object is reclaimed. Pointer slots in objects hold `Option<Oid>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl Oid {
    /// Returns the raw numeric id.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o#{}", self.0)
    }
}

/// Identifies one physical partition of the database.
///
/// Partitions are contiguous runs of pages; partition `p` with a partition
/// size of `k` pages spans the global pages `[p*k, (p+1)*k)`. Partition ids
/// are dense: they are handed out `0, 1, 2, ...` as the database grows and
/// are never retired (a collected partition is reused as the next copy
/// target rather than freed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Returns the raw partition number.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the partition number as a `usize`, for indexing dense
    /// per-partition tables.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies one page in the global (database-wide) page address space.
///
/// The buffer pool caches pages by [`PageId`]; the mapping between pages and
/// partitions is pure arithmetic (see [`crate::config::DbConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Returns the raw page number.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg#{}", self.0)
    }
}

/// Index of a pointer slot within an object.
///
/// Objects in the simulated database carry a small array of pointer slots
/// (two tree-child slots plus any dense edges, in the synthetic workload);
/// a `(Oid, SlotId)` pair is a *pointer location*, the unit tracked by
/// remembered sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u16);

impl SlotId {
    /// Returns the slot index as a `usize`, for indexing the slot array.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A pointer location: slot `slot` of object `owner`.
///
/// Remembered sets record the locations of inter-partition pointers so a
/// partition can be collected without scanning the rest of the database, and
/// so the collector can forward those pointers when it relocates their
/// targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointerLoc {
    /// The object containing the pointer.
    pub owner: Oid,
    /// Which of the owner's slots holds the pointer.
    pub slot: SlotId,
}

impl PointerLoc {
    /// Convenience constructor.
    #[inline]
    pub const fn new(owner: Oid, slot: SlotId) -> Self {
        Self { owner, slot }
    }
}

impl fmt::Display for PointerLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.owner, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms_are_compact_and_distinct() {
        assert_eq!(Oid(42).to_string(), "o#42");
        assert_eq!(PartitionId(3).to_string(), "P3");
        assert_eq!(PageId(1027).to_string(), "pg#1027");
        assert_eq!(SlotId(2).to_string(), "s2");
        assert_eq!(PointerLoc::new(Oid(7), SlotId(1)).to_string(), "o#7.s1");
    }

    #[test]
    fn ids_order_by_underlying_value() {
        assert!(Oid(1) < Oid(2));
        assert!(PartitionId(0) < PartitionId(10));
        assert!(PageId(5) < PageId(6));
        assert!(SlotId(0) < SlotId(1));
    }

    #[test]
    fn ids_hash_distinctly() {
        let set: HashSet<Oid> = (0..100).map(Oid).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn pointer_loc_equality_is_componentwise() {
        let a = PointerLoc::new(Oid(1), SlotId(0));
        let b = PointerLoc::new(Oid(1), SlotId(0));
        let c = PointerLoc::new(Oid(1), SlotId(1));
        let d = PointerLoc::new(Oid(2), SlotId(0));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn partition_id_as_usize_round_trips() {
        let p = PartitionId(17);
        assert_eq!(p.as_usize(), 17);
        assert_eq!(p.index(), 17);
    }
}
