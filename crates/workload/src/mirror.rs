//! The generator's private model of the forest it has built.
//!
//! The workload generator must choose live nodes to traverse and live tree
//! edges to delete **without consulting the simulated database** (otherwise
//! a recorded trace would not replay identically). The mirror records tree
//! shape — parent links, the two tree-child slots, dense-edge slots — and
//! answers the one liveness question the generator needs:
//! [`Mirror::is_attached`], "does the chain of tree edges from this node up
//! to its root still exist?"
//!
//! Note the mirror deliberately ignores dense edges for attachment: the
//! paper's traversals "are only done on the edges that constitute the
//! binary trees", and its mutations target tree edges. An object kept alive
//! only through a dense edge is invisible to the application — but very
//! much visible to the collector, which is the whole point.

use crate::event::NodeId;

/// The two tree-child slots every binary-tree node owns.
pub const TREE_SLOTS: u16 = 2;

/// Mirror bookkeeping for one node.
#[derive(Debug, Clone)]
pub struct MirrorNode {
    /// Tree this node belongs to (index into the mirror's root list).
    pub tree: u32,
    /// The tree edge pointing here: `(parent, parent's slot)`. `None` for
    /// roots. The link is *not* cleared when the edge is deleted; liveness
    /// is re-checked against the parent's slot (see [`Mirror::is_attached`]).
    pub parent: Option<(NodeId, u16)>,
    /// Tree children (slots 0 and 1).
    pub tree_children: [Option<NodeId>; 2],
    /// Dense-edge slots (database slots `2..`).
    pub extra_slots: Vec<Option<NodeId>>,
    /// Whether this node was created as a large leaf object.
    pub is_large: bool,
}

impl MirrorNode {
    /// Reads a slot by database slot index (0/1 = tree, 2+ = dense).
    pub fn slot(&self, slot: u16) -> Option<NodeId> {
        if slot < TREE_SLOTS {
            self.tree_children[slot as usize]
        } else {
            self.extra_slots
                .get((slot - TREE_SLOTS) as usize)
                .copied()
                .flatten()
        }
    }

    /// Total number of slots (tree + dense).
    pub fn slot_count(&self) -> u16 {
        TREE_SLOTS + self.extra_slots.len() as u16
    }
}

/// The forest model.
#[derive(Debug, Clone, Default)]
pub struct Mirror {
    nodes: Vec<MirrorNode>,
    roots: Vec<NodeId>,
    tree_members: Vec<Vec<NodeId>>,
}

impl Mirror {
    /// Creates an empty mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes ever created.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// The root of tree `t`.
    pub fn root_of(&self, t: u32) -> NodeId {
        self.roots[t as usize]
    }

    /// All members ever created in tree `t` (attached or not).
    pub fn members_of(&self, t: u32) -> &[NodeId] {
        &self.tree_members[t as usize]
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &MirrorNode {
        &self.nodes[id.as_usize()]
    }

    /// Registers a new root; returns its id (dense, creation order).
    pub fn add_root(&mut self, is_large: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u64);
        let tree = self.roots.len() as u32;
        self.nodes.push(MirrorNode {
            tree,
            parent: None,
            tree_children: [None, None],
            extra_slots: Vec::new(),
            is_large,
        });
        self.roots.push(id);
        self.tree_members.push(vec![id]);
        id
    }

    /// Registers a child attached at `parent`'s tree slot `slot`; returns
    /// its id.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not a free tree slot.
    pub fn add_child(&mut self, parent: NodeId, slot: u16, is_large: bool) -> NodeId {
        assert!(slot < TREE_SLOTS, "children attach to tree slots");
        assert!(
            self.nodes[parent.as_usize()].tree_children[slot as usize].is_none(),
            "tree slot already occupied"
        );
        let id = NodeId(self.nodes.len() as u64);
        let tree = self.nodes[parent.as_usize()].tree;
        self.nodes.push(MirrorNode {
            tree,
            parent: Some((parent, slot)),
            tree_children: [None, None],
            extra_slots: Vec::new(),
            is_large,
        });
        self.nodes[parent.as_usize()].tree_children[slot as usize] = Some(id);
        self.tree_members[tree as usize].push(id);
        id
    }

    /// Appends a dense-edge slot to `owner`; returns the database slot
    /// index it will occupy.
    pub fn add_extra_slot(&mut self, owner: NodeId) -> u16 {
        let n = &mut self.nodes[owner.as_usize()];
        n.extra_slots.push(None);
        TREE_SLOTS + (n.extra_slots.len() - 1) as u16
    }

    /// Records a pointer store `owner.slot := value` (dense edge creation
    /// or tree edge deletion).
    pub fn set_slot(&mut self, owner: NodeId, slot: u16, value: Option<NodeId>) {
        let n = &mut self.nodes[owner.as_usize()];
        if slot < TREE_SLOTS {
            n.tree_children[slot as usize] = value;
        } else {
            n.extra_slots[(slot - TREE_SLOTS) as usize] = value;
        }
    }

    /// True if the chain of tree edges from `id` to its tree root is
    /// intact.
    pub fn is_attached(&self, id: NodeId) -> bool {
        let mut cur = id;
        loop {
            match self.nodes[cur.as_usize()].parent {
                None => return true, // reached a root
                Some((parent, slot)) => {
                    if self.nodes[parent.as_usize()].tree_children[slot as usize] != Some(cur) {
                        return false;
                    }
                    cur = parent;
                }
            }
        }
    }

    /// Count of attached members of tree `t` (O(members) — used by tests
    /// and diagnostics, not the hot path).
    pub fn attached_count(&self, t: u32) -> usize {
        self.tree_members[t as usize]
            .iter()
            .filter(|&&n| self.is_attached(n))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_and_children_get_dense_ids() {
        let mut m = Mirror::new();
        let r = m.add_root(false);
        let a = m.add_child(r, 0, false);
        let b = m.add_child(r, 1, true);
        let c = m.add_child(a, 0, false);
        assert_eq!((r, a, b, c), (NodeId(0), NodeId(1), NodeId(2), NodeId(3)));
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.tree_count(), 1);
        assert_eq!(m.root_of(0), r);
        assert_eq!(m.members_of(0), &[r, a, b, c]);
        assert!(m.node(b).is_large);
    }

    #[test]
    fn two_trees_are_separate() {
        let mut m = Mirror::new();
        let r1 = m.add_root(false);
        let r2 = m.add_root(false);
        let a = m.add_child(r2, 0, false);
        assert_eq!(m.tree_count(), 2);
        assert_eq!(m.node(a).tree, 1);
        assert_eq!(m.members_of(0), &[r1]);
        assert_eq!(m.members_of(1), &[r2, a]);
    }

    #[test]
    fn attachment_follows_tree_edges() {
        let mut m = Mirror::new();
        let r = m.add_root(false);
        let a = m.add_child(r, 0, false);
        let b = m.add_child(a, 1, false);
        assert!(m.is_attached(r));
        assert!(m.is_attached(b));
        // Cut r -> a.
        m.set_slot(r, 0, None);
        assert!(m.is_attached(r));
        assert!(!m.is_attached(a));
        assert!(!m.is_attached(b));
        assert_eq!(m.attached_count(0), 1);
    }

    #[test]
    fn dense_edges_do_not_affect_attachment() {
        let mut m = Mirror::new();
        let r = m.add_root(false);
        let a = m.add_child(r, 0, false);
        let b = m.add_child(a, 0, false);
        // Dense edge r -> b.
        let s = m.add_extra_slot(r);
        assert_eq!(s, 2);
        m.set_slot(r, s, Some(b));
        assert_eq!(m.node(r).slot(s), Some(b));
        m.set_slot(r, 0, None); // cut r -> a
        assert!(
            !m.is_attached(b),
            "dense edges keep objects DB-live, not application-attached"
        );
    }

    #[test]
    fn slot_accessors_cover_tree_and_dense() {
        let mut m = Mirror::new();
        let r = m.add_root(false);
        let a = m.add_child(r, 1, false);
        assert_eq!(m.node(r).slot(0), None);
        assert_eq!(m.node(r).slot(1), Some(a));
        assert_eq!(m.node(r).slot(2), None, "nonexistent dense slot reads None");
        assert_eq!(m.node(r).slot_count(), 2);
        m.add_extra_slot(r);
        assert_eq!(m.node(r).slot_count(), 3);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_attach_panics() {
        let mut m = Mirror::new();
        let r = m.add_root(false);
        m.add_child(r, 0, false);
        m.add_child(r, 0, false);
    }
}
