//! Batched struct-of-arrays event decoding.
//!
//! The per-event replay path decodes one tagged record at a time and
//! immediately dispatches it — decode and apply interleave, so the decoder's
//! branchy byte-twiddling and the simulator's table lookups fight over the
//! same instruction and data caches. [`EventBlock`] separates the phases:
//! [`crate::TraceCursor::next_block`] decodes a *run* of events into six
//! flat, column-ordered arrays in one tight pass, and the replay loop then
//! applies the run from those arrays without touching the byte stream.
//!
//! The block is plain reusable scratch: [`EventBlock::clear`] keeps every
//! column's capacity, so a replay loop that recycles one block (or a small
//! ring of them, for pipelined decode-ahead) performs **zero allocation
//! after warmup**. Columns are lane-shared across event kinds — `a` holds
//! the acting node for every kind, `b` the second node (parent or pointer
//! target) where one exists — which keeps the block at ~17 bytes/event
//! regardless of the `Event` enum's in-memory size.

use crate::event::{Event, NodeId};
use crate::trace;
use pgc_types::Bytes;

/// Default number of events decoded per [`crate::TraceCursor::next_block`]
/// call: large enough to amortize loop overhead — and, in the pipelined
/// decode-ahead path, to keep channel hand-offs rare — while a block
/// (~70 KB) still fits in L2 beside the simulator's working set.
pub const BLOCK_EVENTS: usize = 4096;

/// A run of decoded events in struct-of-arrays layout.
///
/// Every column has one entry per event; lanes that a kind does not use
/// hold zero. `kind` stores the trace codec's tag byte, so a block is also
/// a cheap histogram substrate for diagnostics.
///
/// ```
/// use pgc_workload::{EncodedTrace, EventBlock, WorkloadParams};
///
/// let trace = EncodedTrace::record(WorkloadParams::small().with_seed(3)).unwrap();
/// let mut cursor = trace.cursor();
/// let mut block = EventBlock::new();
/// let mut replayed = 0u64;
/// while cursor.next_block(&mut block).unwrap() > 0 {
///     for i in 0..block.len() {
///         let _event = block.get(i);
///         replayed += 1;
///     }
/// }
/// assert_eq!(replayed, trace.events());
/// assert_eq!(cursor.remaining_events(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EventBlock {
    /// Trace tag byte per event (`1..=6`).
    kind: Vec<u8>,
    /// Acting node: the created node, pointer owner, or visited node.
    a: Vec<u64>,
    /// Second node where one exists: `CreateChild` parent, `WritePointer`
    /// target (presence in `size`). Zero otherwise.
    b: Vec<u64>,
    /// Object size for creations; `WritePointer` reuses the lane as the
    /// target-presence flag (0 = null store, 1 = `b` is the target).
    size: Vec<u32>,
    /// Slot index for `CreateChild` (parent slot) and `WritePointer`.
    slot: Vec<u16>,
    /// Slot count for creations.
    slots: Vec<u16>,
}

impl EventBlock {
    /// An empty block; columns allocate lazily on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty block with every column sized for `events` entries.
    pub fn with_capacity(events: usize) -> Self {
        Self {
            kind: Vec::with_capacity(events),
            a: Vec::with_capacity(events),
            b: Vec::with_capacity(events),
            size: Vec::with_capacity(events),
            slot: Vec::with_capacity(events),
            slots: Vec::with_capacity(events),
        }
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// True once the block holds [`BLOCK_EVENTS`] events — the point a
    /// packing loop flushes it and starts refilling.
    pub fn is_full(&self) -> bool {
        self.kind.len() >= BLOCK_EVENTS
    }

    /// Smallest column capacity — the number of events the block can hold
    /// before any column reallocates.
    pub fn capacity(&self) -> usize {
        self.kind
            .capacity()
            .min(self.a.capacity())
            .min(self.b.capacity())
            .min(self.size.capacity())
            .min(self.slot.capacity())
            .min(self.slots.capacity())
    }

    /// Empties the block, keeping every column's capacity.
    pub fn clear(&mut self) {
        self.kind.clear();
        self.a.clear();
        self.b.clear();
        self.size.clear();
        self.slot.clear();
        self.slots.clear();
    }

    /// Appends one event, scattering its fields across the columns.
    #[inline]
    pub fn push(&mut self, event: &Event) {
        let (kind, a, b, size, slot, slots) = match *event {
            Event::CreateRoot { node, size, slots } => (
                trace::TAG_CREATE_ROOT,
                node.0,
                0,
                size.get() as u32,
                0,
                slots,
            ),
            Event::CreateChild {
                node,
                parent,
                parent_slot,
                size,
                slots,
            } => (
                trace::TAG_CREATE_CHILD,
                node.0,
                parent.0,
                size.get() as u32,
                parent_slot,
                slots,
            ),
            Event::WritePointer { owner, slot, new } => (
                trace::TAG_WRITE_POINTER,
                owner.0,
                new.map_or(0, |t| t.0),
                new.is_some() as u32,
                slot,
                0,
            ),
            Event::AddSlot { owner } => (trace::TAG_ADD_SLOT, owner.0, 0, 0, 0, 0),
            Event::Visit { node } => (trace::TAG_VISIT, node.0, 0, 0, 0, 0),
            Event::DataWrite { node } => (trace::TAG_DATA_WRITE, node.0, 0, 0, 0, 0),
        };
        self.kind.push(kind);
        self.a.push(a);
        self.b.push(b);
        self.size.push(size);
        self.slot.push(slot);
        self.slots.push(slots);
    }

    /// Reconstructs event `i` from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Event {
        match self.kind[i] {
            trace::TAG_CREATE_ROOT => Event::CreateRoot {
                node: NodeId(self.a[i]),
                size: Bytes(self.size[i] as u64),
                slots: self.slots[i],
            },
            trace::TAG_CREATE_CHILD => Event::CreateChild {
                node: NodeId(self.a[i]),
                parent: NodeId(self.b[i]),
                parent_slot: self.slot[i],
                size: Bytes(self.size[i] as u64),
                slots: self.slots[i],
            },
            trace::TAG_WRITE_POINTER => Event::WritePointer {
                owner: NodeId(self.a[i]),
                slot: self.slot[i],
                new: (self.size[i] != 0).then(|| NodeId(self.b[i])),
            },
            trace::TAG_ADD_SLOT => Event::AddSlot {
                owner: NodeId(self.a[i]),
            },
            trace::TAG_VISIT => Event::Visit {
                node: NodeId(self.a[i]),
            },
            trace::TAG_DATA_WRITE => Event::DataWrite {
                node: NodeId(self.a[i]),
            },
            t => unreachable!("EventBlock holds only codec tags, found {t}"),
        }
    }

    /// Iterates the reconstructed events in order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::EncodedTrace;
    use crate::params::WorkloadParams;
    use pgc_types::SimRng;

    /// Random events spanning the full encodable field ranges, including
    /// `u64::MAX` node ids and null pointer stores.
    fn random_events(seed: u64, n: usize) -> Vec<Event> {
        let mut rng = SimRng::new(seed);
        let id = |rng: &mut SimRng| {
            if rng.chance(0.05) {
                NodeId(u64::MAX)
            } else {
                NodeId(rng.next_u64())
            }
        };
        (0..n)
            .map(|_| match rng.below(6) {
                0 => Event::CreateRoot {
                    node: id(&mut rng),
                    size: Bytes(rng.range_inclusive(0, u32::MAX as u64)),
                    slots: rng.range_inclusive(0, u16::MAX as u64) as u16,
                },
                1 => Event::CreateChild {
                    node: id(&mut rng),
                    parent: id(&mut rng),
                    parent_slot: rng.range_inclusive(0, u16::MAX as u64) as u16,
                    size: Bytes(rng.range_inclusive(0, u32::MAX as u64)),
                    slots: rng.range_inclusive(0, u16::MAX as u64) as u16,
                },
                2 => Event::WritePointer {
                    owner: id(&mut rng),
                    slot: rng.range_inclusive(0, u16::MAX as u64) as u16,
                    new: rng.chance(0.5).then(|| id(&mut rng)),
                },
                3 => Event::AddSlot {
                    owner: id(&mut rng),
                },
                4 => Event::Visit { node: id(&mut rng) },
                _ => Event::DataWrite { node: id(&mut rng) },
            })
            .collect()
    }

    #[test]
    fn push_get_round_trips_every_kind_and_extreme_value() {
        for seed in 0..10u64 {
            let events = random_events(seed, 500);
            let mut block = EventBlock::new();
            for e in &events {
                block.push(e);
            }
            assert_eq!(block.len(), events.len());
            let back: Vec<Event> = block.iter().collect();
            assert_eq!(back, events, "seed {seed}");
        }
    }

    #[test]
    fn null_store_to_node_zero_are_distinguished() {
        // Target NodeId(0) and a null store share b == 0; the presence
        // lane must keep them apart.
        let events = [
            Event::WritePointer {
                owner: NodeId(1),
                slot: 0,
                new: Some(NodeId(0)),
            },
            Event::WritePointer {
                owner: NodeId(1),
                slot: 0,
                new: None,
            },
        ];
        let mut block = EventBlock::new();
        events.iter().for_each(|e| block.push(e));
        assert_eq!(block.get(0), events[0]);
        assert_eq!(block.get(1), events[1]);
    }

    #[test]
    fn block_replay_of_a_recorded_trace_matches_per_event_decode() {
        let trace = EncodedTrace::record(WorkloadParams::small().with_seed(11)).unwrap();
        let per_event: Vec<Event> = trace.cursor().collect();
        let mut cursor = trace.cursor();
        let mut block = EventBlock::new();
        let mut batched = Vec::with_capacity(per_event.len());
        loop {
            let n = cursor.next_block(&mut block).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= BLOCK_EVENTS);
            batched.extend(block.iter());
        }
        assert_eq!(batched, per_event);
        assert_eq!(cursor.decoded(), trace.events());
        assert_eq!(cursor.remaining_events(), 0);
    }

    #[test]
    fn remaining_events_counts_down_block_by_block() {
        // Two full blocks plus a half-full tail.
        let total = 2 * BLOCK_EVENTS + BLOCK_EVENTS / 2;
        let events = random_events(3, total);
        let trace = EncodedTrace::from_events(WorkloadParams::small(), &events);
        let mut cursor = trace.cursor();
        assert_eq!(cursor.remaining_events(), total as u64);
        let mut block = EventBlock::new();
        cursor.next_block(&mut block).unwrap();
        assert_eq!(block.len(), BLOCK_EVENTS);
        assert_eq!(cursor.remaining_events(), (total - BLOCK_EVENTS) as u64);
        cursor.next_block(&mut block).unwrap();
        cursor.next_block(&mut block).unwrap();
        assert_eq!(block.len(), total - 2 * BLOCK_EVENTS);
        assert_eq!(cursor.remaining_events(), 0);
        assert_eq!(cursor.next_block(&mut block).unwrap(), 0);
        assert!(block.is_empty());
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let events = random_events(4, BLOCK_EVENTS);
        let mut block = EventBlock::with_capacity(BLOCK_EVENTS);
        assert!(block.capacity() >= BLOCK_EVENTS);
        events.iter().for_each(|e| block.push(e));
        let cap = block.capacity();
        block.clear();
        assert!(block.is_empty());
        assert_eq!(block.capacity(), cap, "clear must not shed capacity");
        // A decode loop reusing the block never grows it past the cap.
        let trace = EncodedTrace::from_events(WorkloadParams::small(), &events);
        let mut cursor = trace.cursor();
        while cursor.next_block(&mut block).unwrap() > 0 {}
        assert_eq!(block.capacity(), cap);
    }

    #[test]
    fn truncated_buffer_is_reported_through_next_block() {
        let trace = EncodedTrace::record(WorkloadParams::small().with_seed(5)).unwrap();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        let chopped = crate::trace::read_trace(bytes.as_slice());
        assert!(chopped.is_err(), "sanity: the cut lands mid-event");
        let mut corrupt = trace.clone();
        corrupt.truncate_for_test(3);
        let mut cursor = corrupt.cursor();
        let mut block = EventBlock::new();
        let err = loop {
            match cursor.next_block(&mut block) {
                Ok(0) => panic!("truncation must not decode cleanly"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, pgc_types::PgcError::TraceFormat(_)));
    }
}
