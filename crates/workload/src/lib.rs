//! # pgc-workload
//!
//! The synthetic application of Sec. 5 of the paper and the trace
//! machinery that makes the evaluation *trace-driven*.
//!
//! * [`event`] — the application event vocabulary: create a tree root,
//!   create a child near its parent, store/overwrite/delete a pointer, add
//!   a dense-edge slot, visit an object, mutate its data. Events name
//!   objects by dense workload-level [`event::NodeId`]s; the simulator maps
//!   them to database `Oid`s at replay time.
//! * [`params`] — [`params::WorkloadParams`]: every knob of the paper's
//!   test database (object sizes U(50,150) plus 64 KB large leaves at ~20%
//!   of bytes, dense-edge fraction ≈ connectivity − 1, the 30/20/50
//!   traversal mix with 5% subtree pruning and 1% modify-on-visit, edge
//!   deletion pacing, allocation target).
//! * [`mirror`] — the generator's private model of the forest it has built
//!   (tree shape, attachment checks); the generator never queries the
//!   simulated database, so a recorded trace replays identically.
//! * [`generator`] — [`generator::SyntheticWorkload`], an
//!   `Iterator<Item = Event>` producing the interleaved
//!   build/traverse/mutate stream.
//! * [`trace`] — a versioned binary trace codec (record to bytes/file,
//!   replay as an event iterator), dependency-free.
//! * [`encoded`] — the generate-once / replay-many engine:
//!   [`encoded::EncodedTrace`] (one workload's stream as a compact shared
//!   byte buffer plus header), [`encoded::TraceCursor`] (zero-allocation
//!   replay), and [`encoded::TraceCache`] (`Arc`-sharing cache keyed by
//!   [`params::WorkloadParams::digest`]) — what lets a multi-policy
//!   experiment pay the generator cost once per seed instead of once per
//!   `(policy, seed)` job.
//! * [`block`] — [`block::EventBlock`], a reusable struct-of-arrays batch
//!   that [`encoded::TraceCursor::next_block`] fills a run of events at a
//!   time, separating the decode pass from the apply pass in hot replay
//!   loops (zero allocation after warmup).
//! * [`assembly`] — a second application model, shaped like the OO7 design
//!   library the paper cites: assembly hierarchies over cyclic composite
//!   parts with large documents, churned by whole-composite replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembly;
pub mod block;
pub mod encoded;
pub mod event;
pub mod generator;
pub mod mirror;
pub mod params;
pub mod trace;

pub use assembly::{AssemblyParams, AssemblyWorkload};
pub use block::{EventBlock, BLOCK_EVENTS};
pub use encoded::{EncodedTrace, TraceCache, TraceCursor, TraceHeader, TraceSegment, MARK_EVERY};
pub use event::{Event, NodeId};
pub use generator::SyntheticWorkload;
pub use params::WorkloadParams;
pub use trace::{decode_event, encode_event, read_trace, write_trace, TraceReader, TraceWriter};
