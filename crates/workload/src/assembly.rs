//! An OO7-flavored design-library workload.
//!
//! The paper justifies its large leaf objects "in a manner similar to the
//! document nodes in the OO7 benchmark". This module goes the rest of the
//! way and provides a second, structurally different application model
//! shaped like OO7's design library:
//!
//! * a forest of **modules**, each a complete assembly tree of fixed
//!   fan-out and depth;
//! * **base assemblies** (the leaves) own a fixed number of **composite
//!   parts**;
//! * a composite part is a small *cyclic* graph of atomic parts (a ring)
//!   plus one large **design document**;
//! * churn replaces whole composite parts: the pointer from the base
//!   assembly is overwritten with a freshly built composite, orphaning the
//!   old one — a garbage *cycle*, which stresses exactly the collector
//!   behaviour tree workloads cannot (cyclic garbage, including
//!   cross-partition cycles when a composite straddles partitions);
//! * traversals walk a module's assembly tree and visit every atomic part
//!   of every composite, occasionally reading the document.
//!
//! The generator emits the same [`Event`] vocabulary as the tree workload,
//! so traces record/replay identically and any policy can be driven by it.

use crate::event::{Event, NodeId};
use pgc_types::{Bytes, PgcError, Result, SimRng};
use std::collections::VecDeque;

/// Parameters of the assembly workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AssemblyParams {
    /// RNG seed.
    pub seed: u64,
    /// Number of modules (database roots).
    pub modules: u32,
    /// Children per assembly node.
    pub fanout: u32,
    /// Assembly-tree depth (levels of assemblies below the module root;
    /// the lowest level consists of base assemblies).
    pub depth: u32,
    /// Composite parts owned by each base assembly.
    pub parts_per_base: u32,
    /// Atomic parts in each composite's ring.
    pub atomics_per_composite: u32,
    /// Size of assembly and atomic-part objects (bytes).
    pub small_size: u64,
    /// Size of each composite's design document (bytes).
    pub document_size: u64,
    /// Composite replacements to perform after construction.
    pub replacements: u32,
    /// Module traversals interleaved between replacements.
    pub traversals_per_replacement: u32,
    /// Probability a traversal reads a composite's document.
    pub p_read_document: f64,
}

impl Default for AssemblyParams {
    fn default() -> Self {
        Self {
            seed: 1,
            modules: 3,
            fanout: 3,
            depth: 3,
            parts_per_base: 3,
            atomics_per_composite: 12,
            small_size: 100,
            document_size: 32 * 1024,
            replacements: 600,
            traversals_per_replacement: 1,
            p_read_document: 0.2,
        }
    }
}

impl AssemblyParams {
    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of composite replacements (churn volume).
    #[must_use]
    pub fn with_replacements(mut self, n: u32) -> Self {
        self.replacements = n;
        self
    }

    /// A tiny configuration for tests (runs in milliseconds, documents
    /// small enough for miniature partitions).
    pub fn small() -> Self {
        Self {
            modules: 2,
            fanout: 2,
            depth: 2,
            parts_per_base: 2,
            atomics_per_composite: 5,
            document_size: 4 * 1024,
            replacements: 60,
            ..Self::default()
        }
    }

    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.modules == 0 || self.fanout == 0 || self.parts_per_base == 0 {
            return Err(PgcError::InvalidConfig(
                "modules, fanout, and parts_per_base must be positive",
            ));
        }
        if self.atomics_per_composite < 2 {
            return Err(PgcError::InvalidConfig(
                "a composite ring needs at least 2 atomic parts",
            ));
        }
        if self.small_size == 0 || self.document_size == 0 {
            return Err(PgcError::InvalidConfig("object sizes must be positive"));
        }
        if !(0.0..=1.0).contains(&self.p_read_document) {
            return Err(PgcError::InvalidConfig("p_read_document must be in [0,1]"));
        }
        Ok(())
    }

    /// Total objects built during initial construction.
    pub fn initial_objects(&self) -> u64 {
        let assemblies_per_module: u64 = (0..=self.depth)
            .map(|level| (self.fanout as u64).pow(level))
            .sum();
        let bases_per_module = (self.fanout as u64).pow(self.depth);
        let composite_objects = 1 + self.atomics_per_composite as u64 + 1; // root + atomics + doc
        self.modules as u64
            * (assemblies_per_module
                + bases_per_module * self.parts_per_base as u64 * composite_objects)
    }
}

/// One composite part's node ids, for traversal and replacement.
#[derive(Debug, Clone)]
struct Composite {
    root: NodeId,
    atomics: Vec<NodeId>,
    document: NodeId,
}

/// A slot in a base assembly that holds a (replaceable) composite.
#[derive(Debug, Clone, Copy)]
struct PartSlot {
    base: NodeId,
    slot: u16,
}

/// The assembly workload generator: an `Iterator<Item = Event>`.
#[derive(Debug, Clone)]
pub struct AssemblyWorkload {
    params: AssemblyParams,
    rng: SimRng,
    pending: VecDeque<Event>,
    next_node: u64,
    modules: Vec<NodeId>,
    /// Assembly tree per module, level by level (for traversal).
    module_assemblies: Vec<Vec<NodeId>>,
    part_slots: Vec<PartSlot>,
    composites: Vec<Composite>, // parallel to part_slots: current occupant
    built: bool,
    replacements_done: u32,
}

impl AssemblyWorkload {
    /// Creates a generator (validates parameters).
    pub fn new(params: AssemblyParams) -> Result<Self> {
        params.validate()?;
        let rng = SimRng::new(params.seed);
        Ok(Self {
            params,
            rng,
            pending: VecDeque::new(),
            next_node: 0,
            modules: Vec::new(),
            module_assemblies: Vec::new(),
            part_slots: Vec::new(),
            composites: Vec::new(),
            built: false,
            replacements_done: 0,
        })
    }

    /// Parameters in use.
    pub fn params(&self) -> &AssemblyParams {
        &self.params
    }

    /// Composite replacements performed so far.
    pub fn replacements_done(&self) -> u32 {
        self.replacements_done
    }

    fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        id
    }

    // -----------------------------------------------------------------
    // Construction
    // -----------------------------------------------------------------

    fn build_all(&mut self) {
        for _ in 0..self.params.modules {
            self.build_module();
        }
        self.built = true;
    }

    fn build_module(&mut self) {
        let fanout = self.params.fanout as u16;
        let root = self.fresh_node();
        self.pending.push_back(Event::CreateRoot {
            node: root,
            size: Bytes(self.params.small_size),
            slots: fanout,
        });
        self.modules.push(root);
        let mut all_assemblies = vec![root];

        // Assembly levels.
        let mut frontier = vec![root];
        for level in 1..=self.params.depth {
            let is_base_level = level == self.params.depth;
            let child_slots = if is_base_level {
                self.params.parts_per_base as u16
            } else {
                fanout
            };
            let mut next = Vec::new();
            for &parent in &frontier {
                for slot in 0..fanout {
                    let child = self.fresh_node();
                    self.pending.push_back(Event::CreateChild {
                        node: child,
                        parent,
                        parent_slot: slot,
                        size: Bytes(self.params.small_size),
                        slots: child_slots,
                    });
                    next.push(child);
                }
            }
            all_assemblies.extend(next.iter().copied());
            frontier = next;
        }
        self.module_assemblies.push(all_assemblies);

        // Base assemblies own composite parts.
        for base in frontier {
            for slot in 0..self.params.parts_per_base as u16 {
                let composite = self.build_composite(base, slot);
                self.part_slots.push(PartSlot { base, slot });
                self.composites.push(composite);
            }
        }
    }

    /// Builds a composite part linked from `parent.slot`: a root, a ring of
    /// atomic parts, and a large document. Overwrites whatever the slot
    /// held (that is how replacement generates garbage).
    fn build_composite(&mut self, parent: NodeId, slot: u16) -> Composite {
        let n_atomics = self.params.atomics_per_composite as usize;
        // Root has one slot per atomic plus one for the document.
        let root = self.fresh_node();
        self.pending.push_back(Event::CreateChild {
            node: root,
            parent,
            parent_slot: slot,
            size: Bytes(self.params.small_size),
            slots: n_atomics as u16 + 1,
        });
        // Atomic parts: each has one ring slot.
        let mut atomics = Vec::with_capacity(n_atomics);
        for i in 0..n_atomics {
            let atomic = self.fresh_node();
            self.pending.push_back(Event::CreateChild {
                node: atomic,
                parent: root,
                parent_slot: i as u16,
                size: Bytes(self.params.small_size),
                slots: 1,
            });
            atomics.push(atomic);
        }
        // Close the ring: atomic[i].s0 = atomic[(i+1) % n].
        for i in 0..n_atomics {
            self.pending.push_back(Event::WritePointer {
                owner: atomics[i],
                slot: 0,
                new: Some(atomics[(i + 1) % n_atomics]),
            });
        }
        // The design document hangs off the composite root's last slot.
        let document = self.fresh_node();
        self.pending.push_back(Event::CreateChild {
            node: document,
            parent: root,
            parent_slot: n_atomics as u16,
            size: Bytes(self.params.document_size),
            slots: 0,
        });
        Composite {
            root,
            atomics,
            document,
        }
    }

    // -----------------------------------------------------------------
    // Steady state: traverse + replace
    // -----------------------------------------------------------------

    fn churn_round(&mut self) {
        for _ in 0..self.params.traversals_per_replacement {
            self.traverse_module();
        }
        self.replace_composite();
        self.replacements_done += 1;
    }

    fn traverse_module(&mut self) {
        let m = self.rng.pick_index(self.modules.len());
        // Visit every assembly of the module (they are stored root-first).
        let assemblies = self.module_assemblies[m].clone();
        for a in assemblies {
            self.pending.push_back(Event::Visit { node: a });
        }
        // Visit the module's composites: ring walk + occasional document.
        let module_root = self.modules[m];
        let indices: Vec<usize> = self
            .part_slots
            .iter()
            .enumerate()
            .filter(|(_, ps)| self.owning_module(ps.base) == module_root)
            .map(|(i, _)| i)
            .collect();
        for i in indices {
            let composite = self.composites[i].clone();
            self.pending.push_back(Event::Visit {
                node: composite.root,
            });
            for a in &composite.atomics {
                self.pending.push_back(Event::Visit { node: *a });
            }
            if self.rng.chance(self.params.p_read_document) {
                self.pending.push_back(Event::Visit {
                    node: composite.document,
                });
            }
        }
    }

    /// Which module a base assembly belongs to (modules are built
    /// sequentially, so node-id ranges identify them).
    fn owning_module(&self, base: NodeId) -> NodeId {
        let mut owner = self.modules[0];
        for &m in &self.modules {
            if m <= base {
                owner = m;
            }
        }
        owner
    }

    fn replace_composite(&mut self) {
        let i = self.rng.pick_index(self.part_slots.len());
        let PartSlot { base, slot } = self.part_slots[i];
        // Building the new composite overwrites base.slot, orphaning the
        // old composite — root, ring (a cycle!), and document together.
        let fresh = self.build_composite(base, slot);
        self.composites[i] = fresh;
    }
}

impl Iterator for AssemblyWorkload {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(e);
            }
            if !self.built {
                self.build_all();
                continue;
            }
            if self.replacements_done >= self.params.replacements {
                return None;
            }
            self.churn_round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_initial_structure() {
        let params = AssemblyParams::small();
        let expected = params.initial_objects();
        let events: Vec<Event> = AssemblyWorkload::new(params).unwrap().collect();
        let creations = events.iter().filter(|e| e.is_creation()).count() as u64;
        // Initial construction plus one composite per replacement.
        let per_composite = 1 + 5 + 1;
        let replacements = 60;
        assert_eq!(creations, expected + replacements * per_composite);
    }

    #[test]
    fn ids_are_dense_and_parents_precede_children() {
        let mut created = 0u64;
        for e in AssemblyWorkload::new(AssemblyParams::small()).unwrap() {
            match e {
                Event::CreateRoot { node, .. } => {
                    assert_eq!(node.index(), created);
                    created += 1;
                }
                Event::CreateChild { node, parent, .. } => {
                    assert!(parent.index() < created);
                    assert_eq!(node.index(), created);
                    created += 1;
                }
                Event::WritePointer { owner, new, .. } => {
                    assert!(owner.index() < created);
                    if let Some(t) = new {
                        assert!(t.index() < created);
                    }
                }
                Event::Visit { node } | Event::DataWrite { node } => {
                    assert!(node.index() < created);
                }
                Event::AddSlot { owner } => assert!(owner.index() < created),
            }
        }
        assert!(created > 0);
    }

    #[test]
    fn replacements_orphan_cycles() {
        // Ring pointers are stored with WritePointer; replacements
        // overwrite base slots via CreateChild onto an occupied slot.
        let events: Vec<Event> = AssemblyWorkload::new(AssemblyParams::small())
            .unwrap()
            .collect();
        let ring_writes = events
            .iter()
            .filter(|e| matches!(e, Event::WritePointer { new: Some(_), .. }))
            .count();
        // 2 modules * 4 bases... every composite writes one ring pointer
        // per atomic: at least initial composites * atomics.
        assert!(ring_writes >= 8 * 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Event> = AssemblyWorkload::new(AssemblyParams::small().with_seed(9))
            .unwrap()
            .collect();
        let b: Vec<Event> = AssemblyWorkload::new(AssemblyParams::small().with_seed(9))
            .unwrap()
            .collect();
        let c: Vec<Event> = AssemblyWorkload::new(AssemblyParams::small().with_seed(10))
            .unwrap()
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut p = AssemblyParams::small();
        p.modules = 0;
        assert!(AssemblyWorkload::new(p).is_err());
        let mut p = AssemblyParams::small();
        p.atomics_per_composite = 1;
        assert!(AssemblyWorkload::new(p).is_err());
        let mut p = AssemblyParams::small();
        p.p_read_document = 2.0;
        assert!(AssemblyWorkload::new(p).is_err());
    }

    #[test]
    fn initial_objects_formula_matches_small() {
        let p = AssemblyParams::small();
        // modules=2, fanout=2, depth=2: assemblies/module = 1+2+4 = 7;
        // bases = 4; composites = 4*2 = 8 per module; each composite is
        // 1 + 5 + 1 = 7 objects.
        assert_eq!(p.initial_objects(), 2 * (7 + 8 * 7));
    }

    #[test]
    fn replacements_counter_tracks() {
        let mut g = AssemblyWorkload::new(AssemblyParams::small()).unwrap();
        for _ in g.by_ref() {}
        assert_eq!(g.replacements_done(), 60);
    }
}
