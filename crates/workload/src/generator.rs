//! The synthetic application (Sec. 5): an `Iterator<Item = Event>`.
//!
//! Each *round* interleaves the three application behaviours the paper
//! models, so the database grows, is traversed, and sheds garbage
//! continuously over the whole run (the time-varying figures depend on
//! this):
//!
//! 1. **Build** one augmented binary tree (if the allocation target is not
//!    yet met): a random binary tree emitted in breadth-first creation
//!    order (matching the paper's placement discipline), with uniform
//!    50–150-byte objects, occasional 64 KB large leaves, and
//!    `dense_edge_fraction · n` dense edges between random nodes of the
//!    same tree.
//! 2. **Traverse**: `traversals_per_round` partial tree traversals — per
//!    tree 30% none / 20% depth-first / 50% breadth-first, 5% chance per
//!    edge of skipping the subtree, 1% chance per visit of a data write.
//! 3. **Mutate**: `deletions_per_round` random tree-edge deletions — the
//!    workload's only pointer overwrites, hence the GC trigger events.
//!
//! The generator is deterministic in its seed and never inspects the
//! simulated database, so recording its output and replaying the trace
//! drives every policy with identical input.

use crate::event::{Event, NodeId};
use crate::mirror::{Mirror, TREE_SLOTS};
use crate::params::WorkloadParams;
use pgc_types::{Bytes, SimRng};
use std::collections::VecDeque;

/// Diagnostic counters for a generated workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Trees built.
    pub trees_built: u64,
    /// Objects created (roots + children).
    pub nodes_created: u64,
    /// Of those, large (64 KB-class) leaves.
    pub large_objects: u64,
    /// Bytes allocated.
    pub bytes_allocated: Bytes,
    /// Dense edges threaded.
    pub dense_edges: u64,
    /// Tree edges deleted (pointer overwrites).
    pub deletions: u64,
    /// Objects visited.
    pub visits: u64,
    /// Data writes performed.
    pub data_writes: u64,
}

/// The synthetic workload generator.
///
/// ```
/// use pgc_workload::{SyntheticWorkload, WorkloadParams};
///
/// let params = WorkloadParams::small().with_seed(7);
/// let mut gen = SyntheticWorkload::new(params).unwrap();
/// let events: Vec<_> = gen.by_ref().collect();
/// assert!(!events.is_empty());
/// let stats = gen.stats();
/// assert!(stats.bytes_allocated >= gen.params().target_allocated);
/// assert!(stats.deletions > 0, "garbage was generated");
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    params: WorkloadParams,
    rng: SimRng,
    mirror: Mirror,
    pending: VecDeque<Event>,
    stats: GenStats,
    done: bool,
}

impl SyntheticWorkload {
    /// Creates a generator for the given parameters (validated).
    pub fn new(params: WorkloadParams) -> pgc_types::Result<Self> {
        params.validate()?;
        let rng = SimRng::new(params.seed);
        Ok(Self {
            params,
            rng,
            mirror: Mirror::new(),
            pending: VecDeque::new(),
            stats: GenStats::default(),
            done: false,
        })
    }

    /// The generator's private forest model (read-only; used by tests).
    pub fn mirror(&self) -> &Mirror {
        &self.mirror
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> GenStats {
        self.stats
    }

    /// The parameters this generator runs under.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    // -----------------------------------------------------------------
    // Round structure
    // -----------------------------------------------------------------

    fn round(&mut self) {
        if self.stats.bytes_allocated >= self.params.target_allocated {
            self.done = true;
            return;
        }
        self.build_tree();
        for _ in 0..self.params.traversals_per_round {
            self.traverse_one();
        }
        for _ in 0..self.params.deletions_per_round {
            self.delete_one_edge();
        }
    }

    // -----------------------------------------------------------------
    // Tree construction
    // -----------------------------------------------------------------

    fn build_tree(&mut self) {
        let n = self
            .rng
            .range_inclusive(self.params.tree_nodes_min, self.params.tree_nodes_max)
            as usize;

        // 1. Random binary tree shape: attach node i to a uniformly random
        //    free child slot of the existing nodes.
        let mut parents: Vec<Option<(usize, u16)>> = vec![None; n];
        let mut open_slots: Vec<(usize, u16)> = vec![(0, 0), (0, 1)];
        for (i, parent) in parents.iter_mut().enumerate().skip(1) {
            let k = self.rng.pick_index(open_slots.len());
            let (p, s) = open_slots.swap_remove(k);
            *parent = Some((p, s));
            open_slots.push((i, 0));
            open_slots.push((i, 1));
        }

        // 2. Leaves are the nodes no one attaches to.
        let mut has_child = vec![false; n];
        for parent in parents.iter().flatten() {
            has_child[parent.0] = true;
        }

        // 3. Emit creations in breadth-first order (the paper's placement
        //    order). Children lists come from the shape.
        let mut children: Vec<Vec<(usize, u16)>> = vec![Vec::new(); n];
        for (i, parent) in parents.iter().enumerate() {
            if let Some((p, s)) = parent {
                children[*p].push((i, *s));
            }
        }
        let p_large = self.params.large_leaf_probability();
        let root_size = self.small_size();
        let root_id = self.mirror.add_root(false);
        self.emit_creation(Event::CreateRoot {
            node: root_id,
            size: root_size,
            slots: TREE_SLOTS,
        });

        let mut ids: Vec<Option<NodeId>> = vec![None; n];
        ids[0] = Some(root_id);
        let mut queue: VecDeque<usize> = VecDeque::from([0]);
        while let Some(i) = queue.pop_front() {
            let parent_id = ids[i].expect("BFS emits parents before children");
            let mut kids = children[i].clone();
            kids.sort_by_key(|&(_, s)| s); // left before right
            for (c, slot) in kids {
                let is_large = !has_child[c] && self.rng.chance(p_large);
                let size = if is_large {
                    Bytes(self.params.large_object_size)
                } else {
                    self.small_size()
                };
                let child_id = self.mirror.add_child(parent_id, slot, is_large);
                if is_large {
                    self.stats.large_objects += 1;
                }
                ids[c] = Some(child_id);
                self.emit_creation(Event::CreateChild {
                    node: child_id,
                    parent: parent_id,
                    parent_slot: slot,
                    size,
                    slots: TREE_SLOTS,
                });
                queue.push_back(c);
            }
        }

        // 4. Dense edges between random nodes of this tree.
        let dense = (self.params.dense_edge_fraction * n as f64).round() as usize;
        let tree = self.mirror.node(root_id).tree;
        for _ in 0..dense {
            let members = self.mirror.members_of(tree);
            let a = members[self.rng.pick_index(members.len())];
            let b = members[self.rng.pick_index(members.len())];
            let slot = self.mirror.add_extra_slot(a);
            self.pending.push_back(Event::AddSlot { owner: a });
            self.mirror.set_slot(a, slot, Some(b));
            self.pending.push_back(Event::WritePointer {
                owner: a,
                slot,
                new: Some(b),
            });
            self.stats.dense_edges += 1;
        }
        self.stats.trees_built += 1;
    }

    fn small_size(&mut self) -> Bytes {
        Bytes(
            self.rng
                .range_inclusive(self.params.object_size_min, self.params.object_size_max),
        )
    }

    fn emit_creation(&mut self, event: Event) {
        let size = match event {
            Event::CreateRoot { size, .. } | Event::CreateChild { size, .. } => size,
            _ => unreachable!("emit_creation takes creation events"),
        };
        self.stats.nodes_created += 1;
        self.stats.bytes_allocated += size;
        self.pending.push_back(event);
    }

    // -----------------------------------------------------------------
    // Traversal
    // -----------------------------------------------------------------

    fn traverse_one(&mut self) {
        if self.mirror.tree_count() == 0 {
            return;
        }
        let tree = self.rng.pick_index(self.mirror.tree_count()) as u32;
        let roll = self.rng.unit();
        if roll < self.params.p_no_traversal {
            return;
        }
        let depth_first = roll < self.params.p_no_traversal + self.params.p_depth_first;
        let root = self.mirror.root_of(tree);

        // Work list: stack for DFS, queue for BFS.
        let mut work: VecDeque<NodeId> = VecDeque::from([root]);
        while let Some(node) = if depth_first {
            work.pop_back()
        } else {
            work.pop_front()
        } {
            self.pending.push_back(Event::Visit { node });
            self.stats.visits += 1;
            if self.rng.chance(self.params.p_modify_on_visit) {
                self.pending.push_back(Event::DataWrite { node });
                self.stats.data_writes += 1;
            }
            for slot in 0..TREE_SLOTS {
                if let Some(child) = self.mirror.node(node).tree_children[slot as usize] {
                    if !self.rng.chance(self.params.p_skip_edge) {
                        work.push_back(child);
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Mutation (garbage generation)
    // -----------------------------------------------------------------

    fn delete_one_edge(&mut self) {
        const ATTEMPTS: usize = 24;
        if self.mirror.tree_count() == 0 {
            return;
        }
        for _ in 0..ATTEMPTS {
            let tree = self.rng.pick_index(self.mirror.tree_count()) as u32;
            let members = self.mirror.members_of(tree);
            let candidate = members[self.rng.pick_index(members.len())];
            if !self.mirror.is_attached(candidate) {
                continue;
            }
            let node = self.mirror.node(candidate);
            let filled: Vec<u16> = (0..TREE_SLOTS)
                .filter(|&s| node.tree_children[s as usize].is_some())
                .collect();
            if filled.is_empty() {
                continue;
            }
            let slot = *self.rng.pick(&filled);
            self.mirror.set_slot(candidate, slot, None);
            self.pending.push_back(Event::WritePointer {
                owner: candidate,
                slot,
                new: None,
            });
            self.stats.deletions += 1;
            return;
        }
        // All attempts hit detached or childless nodes; skip this deletion.
    }
}

impl Iterator for SyntheticWorkload {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(e);
            }
            if self.done {
                return None;
            }
            self.round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadParams {
        WorkloadParams::small().with_seed(11)
    }

    #[test]
    fn generator_terminates_and_meets_allocation_target() {
        let mut g = SyntheticWorkload::new(small()).unwrap();
        let events: Vec<Event> = g.by_ref().collect();
        assert!(!events.is_empty());
        let s = g.stats();
        assert!(s.bytes_allocated >= g.params().target_allocated);
        assert!(s.trees_built >= 1);
        assert!(s.deletions > 0, "garbage must be generated");
        assert!(s.visits > 0, "database must be traversed");
    }

    #[test]
    fn creation_ids_are_dense_and_in_order() {
        let g = SyntheticWorkload::new(small()).unwrap();
        let mut expected = 0u64;
        for e in g {
            match e {
                Event::CreateRoot { node, .. } | Event::CreateChild { node, .. } => {
                    assert_eq!(node.index(), expected, "creation order must be dense");
                    expected += 1;
                }
                _ => {}
            }
        }
        assert!(expected > 0);
    }

    #[test]
    fn parents_are_created_before_children_and_events_reference_created_nodes() {
        let g = SyntheticWorkload::new(small()).unwrap();
        let mut created = 0u64;
        for e in g {
            match e {
                Event::CreateRoot { node, .. } => {
                    assert_eq!(node.index(), created);
                    created += 1;
                }
                Event::CreateChild { node, parent, .. } => {
                    assert!(parent.index() < created, "parent must exist");
                    assert_eq!(node.index(), created);
                    created += 1;
                }
                Event::WritePointer { owner, new, .. } => {
                    assert!(owner.index() < created);
                    if let Some(t) = new {
                        assert!(t.index() < created);
                    }
                }
                Event::AddSlot { owner } => assert!(owner.index() < created),
                Event::Visit { node } | Event::DataWrite { node } => {
                    assert!(node.index() < created)
                }
            }
        }
    }

    #[test]
    fn same_seed_reproduces_identical_traces() {
        let a: Vec<Event> = SyntheticWorkload::new(small()).unwrap().collect();
        let b: Vec<Event> = SyntheticWorkload::new(small()).unwrap().collect();
        assert_eq!(a, b);
        let c: Vec<Event> = SyntheticWorkload::new(small().with_seed(12))
            .unwrap()
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn read_write_ratio_lands_near_paper_band() {
        // Paper: edge read/write ratio ~15–20, "not explicitly specified
        // but rather results from the probabilities of operations". We
        // measure edge reads (visits follow tree edges) against the
        // application's edge *updates* (dense-edge stores and deletions;
        // creation-time initialization is part of building the database,
        // not of mutating it).
        let mut g = SyntheticWorkload::new(
            WorkloadParams::default()
                .with_seed(3)
                .with_target_allocated(Bytes::from_mib(2)),
        )
        .unwrap();
        for _ in g.by_ref() {}
        let s = g.stats();
        let edge_updates = s.dense_edges + s.deletions;
        let ratio = s.visits as f64 / edge_updates as f64;
        assert!((10.0..32.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn large_objects_contribute_roughly_a_fifth_of_bytes() {
        let mut g = SyntheticWorkload::new(
            WorkloadParams::default()
                .with_seed(5)
                .with_target_allocated(Bytes::from_mib(4)),
        )
        .unwrap();
        for _ in g.by_ref() {}
        let s = g.stats();
        let large_bytes = s.large_objects * g.params().large_object_size;
        let frac = large_bytes as f64 / s.bytes_allocated.get() as f64;
        assert!(
            (0.08..0.35).contains(&frac),
            "large-object byte fraction = {frac}"
        );
    }

    #[test]
    fn dense_edges_track_fraction() {
        let mut g = SyntheticWorkload::new(
            WorkloadParams::small()
                .with_seed(7)
                .with_dense_edge_fraction(0.1),
        )
        .unwrap();
        for _ in g.by_ref() {}
        let s = g.stats();
        let per_node = s.dense_edges as f64 / s.nodes_created as f64;
        assert!((0.05..0.15).contains(&per_node), "dense/node = {per_node}");
    }

    #[test]
    fn zero_dense_fraction_builds_pure_trees() {
        let mut g = SyntheticWorkload::new(
            WorkloadParams::small()
                .with_seed(9)
                .with_dense_edge_fraction(0.0),
        )
        .unwrap();
        for _ in g.by_ref() {}
        assert_eq!(g.stats().dense_edges, 0);
    }

    #[test]
    fn deletions_only_cut_tree_slots_of_attached_nodes() {
        let g = SyntheticWorkload::new(small()).unwrap();
        // Re-run the event stream checking every deletion against a replica
        // mirror built from the events themselves.
        let mut replica = Mirror::new();
        for e in g {
            match e {
                Event::CreateRoot { .. } => {
                    replica.add_root(false);
                }
                Event::CreateChild {
                    parent,
                    parent_slot,
                    ..
                } => {
                    replica.add_child(parent, parent_slot, false);
                }
                Event::AddSlot { owner } => {
                    replica.add_extra_slot(owner);
                }
                Event::WritePointer { owner, slot, new } => {
                    if new.is_none() && slot < TREE_SLOTS {
                        assert!(
                            replica.node(owner).tree_children[slot as usize].is_some(),
                            "deletion of an already-empty slot"
                        );
                        assert!(replica.is_attached(owner), "deletion from detached node");
                    }
                    replica.set_slot(owner, slot, new);
                }
                Event::Visit { node } | Event::DataWrite { node } => {
                    assert!(replica.is_attached(node), "visited a detached node");
                }
            }
        }
    }
}
