//! Versioned binary trace codec.
//!
//! A trace file is the serialized event stream of one workload: recording a
//! generator's output and replaying the file drives every policy's
//! simulation with byte-identical input — the essence of trace-driven
//! evaluation. The format is deliberately simple and self-contained (no
//! external serialization dependency):
//!
//! ```text
//! header:  magic "PGCT" | version u32 LE
//! event*:  tag u8 | fields (little-endian, fixed width per tag)
//! ```
//!
//! The stream ends at EOF on a tag boundary; a partial event is a
//! [`PgcError::TraceFormat`] error.

use crate::event::{Event, NodeId};
use pgc_types::{Bytes, PgcError, Result};
use std::io::{self, Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"PGCT";
pub(crate) const VERSION: u32 = 1;

pub(crate) const TAG_CREATE_ROOT: u8 = 1;
pub(crate) const TAG_CREATE_CHILD: u8 = 2;
pub(crate) const TAG_WRITE_POINTER: u8 = 3;
pub(crate) const TAG_ADD_SLOT: u8 = 4;
pub(crate) const TAG_VISIT: u8 = 5;
pub(crate) const TAG_DATA_WRITE: u8 = 6;

fn io_err(e: io::Error) -> PgcError {
    PgcError::TraceIo(e.to_string())
}

/// Appends one event's tagged encoding to `buf` (the PGCT body layout,
/// shared by the file codec, [`crate::encoded::EncodedTrace`], and the
/// durable change log in `pgc-durable`). Each event is staged in a
/// fixed stack buffer so the `Vec` pays one capacity check per event,
/// not one per field.
pub fn encode_event(buf: &mut Vec<u8>, event: &Event) {
    let mut tmp = [0u8; 25];
    let len = match *event {
        Event::CreateRoot { node, size, slots } => {
            tmp[0] = TAG_CREATE_ROOT;
            tmp[1..9].copy_from_slice(&node.0.to_le_bytes());
            tmp[9..13].copy_from_slice(&(size.get() as u32).to_le_bytes());
            tmp[13..15].copy_from_slice(&slots.to_le_bytes());
            15
        }
        Event::CreateChild {
            node,
            parent,
            parent_slot,
            size,
            slots,
        } => {
            tmp[0] = TAG_CREATE_CHILD;
            tmp[1..9].copy_from_slice(&node.0.to_le_bytes());
            tmp[9..17].copy_from_slice(&parent.0.to_le_bytes());
            tmp[17..19].copy_from_slice(&parent_slot.to_le_bytes());
            tmp[19..23].copy_from_slice(&(size.get() as u32).to_le_bytes());
            tmp[23..25].copy_from_slice(&slots.to_le_bytes());
            25
        }
        Event::WritePointer { owner, slot, new } => {
            tmp[0] = TAG_WRITE_POINTER;
            tmp[1..9].copy_from_slice(&owner.0.to_le_bytes());
            tmp[9..11].copy_from_slice(&slot.to_le_bytes());
            match new {
                Some(t) => {
                    tmp[11] = 1;
                    tmp[12..20].copy_from_slice(&t.0.to_le_bytes());
                    20
                }
                None => {
                    tmp[11] = 0;
                    12
                }
            }
        }
        Event::AddSlot { owner } => {
            tmp[0] = TAG_ADD_SLOT;
            tmp[1..9].copy_from_slice(&owner.0.to_le_bytes());
            9
        }
        Event::Visit { node } => {
            tmp[0] = TAG_VISIT;
            tmp[1..9].copy_from_slice(&node.0.to_le_bytes());
            9
        }
        Event::DataWrite { node } => {
            tmp[0] = TAG_DATA_WRITE;
            tmp[1..9].copy_from_slice(&node.0.to_le_bytes());
            9
        }
    };
    buf.extend_from_slice(&tmp[..len]);
}

#[inline]
fn truncated() -> PgcError {
    PgcError::TraceFormat("truncated event".into())
}

#[inline]
fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let bytes = buf
        .get(*pos..*pos + N)
        .ok_or_else(truncated)?
        .try_into()
        .expect("slice has length N");
    *pos += N;
    Ok(bytes)
}

#[inline]
fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take::<8>(buf, pos)?))
}

#[inline]
fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take::<4>(buf, pos)?))
}

#[inline]
fn take_u16(buf: &[u8], pos: &mut usize) -> Result<u16> {
    Ok(u16::from_le_bytes(take::<2>(buf, pos)?))
}

/// Decodes the event starting at `pos` in a PGCT body slice, advancing
/// `pos` past it. Returns `Ok(None)` at a clean end of the slice; a partial
/// event or unknown tag is a [`PgcError::TraceFormat`] error. The inverse
/// of [`encode_event`], shared by [`crate::encoded::TraceCursor`] and the
/// durable change-log reader in `pgc-durable`.
pub fn decode_event(buf: &[u8], pos: &mut usize) -> Result<Option<Event>> {
    let Some(&tag) = buf.get(*pos) else {
        return Ok(None);
    };
    *pos += 1;
    let event = match tag {
        TAG_CREATE_ROOT => Event::CreateRoot {
            node: NodeId(take_u64(buf, pos)?),
            size: Bytes(take_u32(buf, pos)? as u64),
            slots: take_u16(buf, pos)?,
        },
        TAG_CREATE_CHILD => Event::CreateChild {
            node: NodeId(take_u64(buf, pos)?),
            parent: NodeId(take_u64(buf, pos)?),
            parent_slot: take_u16(buf, pos)?,
            size: Bytes(take_u32(buf, pos)? as u64),
            slots: take_u16(buf, pos)?,
        },
        TAG_WRITE_POINTER => {
            let owner = NodeId(take_u64(buf, pos)?);
            let slot = take_u16(buf, pos)?;
            let new = match take::<1>(buf, pos)?[0] {
                0 => None,
                1 => Some(NodeId(take_u64(buf, pos)?)),
                b => {
                    return Err(PgcError::TraceFormat(format!(
                        "bad option byte {b} in WritePointer"
                    )))
                }
            };
            Event::WritePointer { owner, slot, new }
        }
        TAG_ADD_SLOT => Event::AddSlot {
            owner: NodeId(take_u64(buf, pos)?),
        },
        TAG_VISIT => Event::Visit {
            node: NodeId(take_u64(buf, pos)?),
        },
        TAG_DATA_WRITE => Event::DataWrite {
            node: NodeId(take_u64(buf, pos)?),
        },
        t => return Err(PgcError::TraceFormat(format!("unknown tag {t}"))),
    };
    Ok(Some(event))
}

/// Streaming trace encoder.
pub struct TraceWriter<W: Write> {
    sink: W,
    events: u64,
    scratch: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns a ready writer.
    pub fn new(mut sink: W) -> Result<Self> {
        sink.write_all(MAGIC).map_err(io_err)?;
        sink.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
        Ok(Self {
            sink,
            events: 0,
            scratch: Vec::with_capacity(32),
        })
    }

    /// Appends one event (encoding through a scratch buffer the writer
    /// owns, so a long recording performs no per-event allocation).
    pub fn write_event(&mut self, event: &Event) -> Result<()> {
        self.scratch.clear();
        encode_event(&mut self.scratch, event);
        self.sink.write_all(&self.scratch).map_err(io_err)?;
        self.events += 1;
        Ok(())
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush().map_err(io_err)?;
        Ok(self.sink)
    }
}

/// Streaming trace decoder: an `Iterator<Item = Result<Event>>`.
pub struct TraceReader<R: Read> {
    source: R,
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Validates the header and returns a ready reader.
    pub fn new(mut source: R) -> Result<Self> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic).map_err(io_err)?;
        if &magic != MAGIC {
            return Err(PgcError::TraceFormat("bad magic".into()));
        }
        let mut ver = [0u8; 4];
        source.read_exact(&mut ver).map_err(io_err)?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(PgcError::TraceFormat(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        Ok(Self {
            source,
            failed: false,
        })
    }

    fn read_u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.source
            .read_exact(&mut b)
            .map_err(|e| PgcError::TraceFormat(format!("truncated event: {e}")))?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.source
            .read_exact(&mut b)
            .map_err(|e| PgcError::TraceFormat(format!("truncated event: {e}")))?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u16(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.source
            .read_exact(&mut b)
            .map_err(|e| PgcError::TraceFormat(format!("truncated event: {e}")))?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.source
            .read_exact(&mut b)
            .map_err(|e| PgcError::TraceFormat(format!("truncated event: {e}")))?;
        Ok(b[0])
    }

    fn read_event(&mut self) -> Result<Option<Event>> {
        // A clean EOF at a tag boundary ends the stream.
        let mut tag = [0u8; 1];
        if self.source.read(&mut tag).map_err(io_err)? == 0 {
            return Ok(None);
        }
        let event = match tag[0] {
            TAG_CREATE_ROOT => Event::CreateRoot {
                node: NodeId(self.read_u64()?),
                size: Bytes(self.read_u32()? as u64),
                slots: self.read_u16()?,
            },
            TAG_CREATE_CHILD => Event::CreateChild {
                node: NodeId(self.read_u64()?),
                parent: NodeId(self.read_u64()?),
                parent_slot: self.read_u16()?,
                size: Bytes(self.read_u32()? as u64),
                slots: self.read_u16()?,
            },
            TAG_WRITE_POINTER => {
                let owner = NodeId(self.read_u64()?);
                let slot = self.read_u16()?;
                let new = match self.read_u8()? {
                    0 => None,
                    1 => Some(NodeId(self.read_u64()?)),
                    b => {
                        return Err(PgcError::TraceFormat(format!(
                            "bad option byte {b} in WritePointer"
                        )))
                    }
                };
                Event::WritePointer { owner, slot, new }
            }
            TAG_ADD_SLOT => Event::AddSlot {
                owner: NodeId(self.read_u64()?),
            },
            TAG_VISIT => Event::Visit {
                node: NodeId(self.read_u64()?),
            },
            TAG_DATA_WRITE => Event::DataWrite {
                node: NodeId(self.read_u64()?),
            },
            t => return Err(PgcError::TraceFormat(format!("unknown tag {t}"))),
        };
        Ok(Some(event))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Event>;

    fn next(&mut self) -> Option<Result<Event>> {
        if self.failed {
            return None;
        }
        match self.read_event() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Serializes a whole event sequence.
///
/// ```
/// use pgc_workload::{read_trace, write_trace, Event, NodeId};
/// use pgc_types::Bytes;
///
/// let events = vec![
///     Event::CreateRoot { node: NodeId(0), size: Bytes(100), slots: 2 },
///     Event::Visit { node: NodeId(0) },
/// ];
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &events).unwrap();
/// assert_eq!(read_trace(buf.as_slice()).unwrap(), events);
/// ```
pub fn write_trace<'a, W: Write>(
    sink: W,
    events: impl IntoIterator<Item = &'a Event>,
) -> Result<u64> {
    let mut w = TraceWriter::new(sink)?;
    for e in events {
        w.write_event(e)?;
    }
    let n = w.events_written();
    w.finish()?;
    Ok(n)
}

/// Deserializes a whole trace.
pub fn read_trace<R: Read>(source: R) -> Result<Vec<Event>> {
    TraceReader::new(source)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticWorkload;
    use crate::params::WorkloadParams;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::CreateRoot {
                node: NodeId(0),
                size: Bytes(120),
                slots: 2,
            },
            Event::CreateChild {
                node: NodeId(1),
                parent: NodeId(0),
                parent_slot: 1,
                size: Bytes(65536),
                slots: 2,
            },
            Event::AddSlot { owner: NodeId(0) },
            Event::WritePointer {
                owner: NodeId(0),
                slot: 2,
                new: Some(NodeId(1)),
            },
            Event::Visit { node: NodeId(1) },
            Event::DataWrite { node: NodeId(1) },
            Event::WritePointer {
                owner: NodeId(0),
                slot: 1,
                new: None,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, &events).unwrap();
        assert_eq!(n, events.len() as u64);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn full_generated_workload_round_trips() {
        let events: Vec<Event> = SyntheticWorkload::new(WorkloadParams::small().with_seed(2))
            .unwrap()
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), events.len());
        assert_eq!(back, events);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(PgcError::TraceFormat(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PGCT");
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, PgcError::TraceFormat(_)));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn truncated_event_is_an_error() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        buf.truncate(buf.len() - 3); // chop mid-event
        let result: Result<Vec<Event>> = read_trace(buf.as_slice());
        assert!(matches!(result, Err(PgcError::TraceFormat(_))));
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PGCT");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(250);
        assert!(matches!(
            read_trace(buf.as_slice()),
            Err(PgcError::TraceFormat(_))
        ));
    }

    #[test]
    fn reader_stops_after_first_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"PGCT");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(250);
        buf.push(TAG_VISIT); // unreachable
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut buf = Vec::new();
        write_trace::<_>(&mut buf, std::iter::empty()).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_option_byte_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(TAG_WRITE_POINTER);
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.push(9); // neither 0 nor 1
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("option byte"), "got {err}");
    }

    /// A stream of random events covering all six tags, with field values
    /// spanning the full encodable ranges (sizes are stored as `u32`).
    pub(super) fn random_events(seed: u64, n: usize) -> Vec<Event> {
        let mut rng = pgc_types::SimRng::new(seed);
        let id = |rng: &mut pgc_types::SimRng| NodeId(rng.next_u64());
        (0..n)
            .map(|_| match rng.below(6) {
                0 => Event::CreateRoot {
                    node: id(&mut rng),
                    size: Bytes(rng.range_inclusive(0, u32::MAX as u64)),
                    slots: rng.range_inclusive(0, u16::MAX as u64) as u16,
                },
                1 => Event::CreateChild {
                    node: id(&mut rng),
                    parent: id(&mut rng),
                    parent_slot: rng.range_inclusive(0, u16::MAX as u64) as u16,
                    size: Bytes(rng.range_inclusive(0, u32::MAX as u64)),
                    slots: rng.range_inclusive(0, u16::MAX as u64) as u16,
                },
                2 => Event::WritePointer {
                    owner: id(&mut rng),
                    slot: rng.range_inclusive(0, u16::MAX as u64) as u16,
                    new: rng.chance(0.5).then(|| id(&mut rng)),
                },
                3 => Event::AddSlot {
                    owner: id(&mut rng),
                },
                4 => Event::Visit { node: id(&mut rng) },
                _ => Event::DataWrite { node: id(&mut rng) },
            })
            .collect()
    }

    #[test]
    fn randomized_streams_round_trip() {
        for seed in 0..20u64 {
            let events = random_events(seed, 400);
            let mut buf = Vec::new();
            let n = write_trace(&mut buf, &events).unwrap();
            assert_eq!(n, events.len() as u64);
            assert_eq!(read_trace(buf.as_slice()).unwrap(), events, "seed {seed}");
        }
    }

    #[test]
    fn slice_decoder_agrees_with_stream_decoder() {
        // The in-memory decoder (`decode_event`, used by the encoded-trace
        // cursor) and the io::Read decoder must be the same codec.
        for seed in 0..10u64 {
            let events = random_events(seed, 300);
            let mut buf = Vec::new();
            write_trace(&mut buf, &events).unwrap();
            let body = &buf[8..]; // skip magic + version
            let mut pos = 0;
            let mut decoded = Vec::new();
            while let Some(e) = decode_event(body, &mut pos).unwrap() {
                decoded.push(e);
            }
            assert_eq!(pos, body.len());
            assert_eq!(decoded, events, "seed {seed}");
        }
    }

    #[test]
    fn every_truncation_point_yields_a_clean_prefix_or_an_error() {
        // Cutting the byte stream anywhere must never fabricate or reorder
        // events: the decoder either fails (mid-header, mid-event) or
        // returns an exact prefix of the original stream (event boundary).
        let events = random_events(42, 60);
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let mut boundary_cuts = 0;
        for cut in 0..buf.len() {
            match read_trace(&buf[..cut]) {
                Ok(prefix) => {
                    boundary_cuts += 1;
                    assert!(prefix.len() <= events.len());
                    assert_eq!(prefix[..], events[..prefix.len()], "cut {cut}");
                }
                Err(PgcError::TraceIo(_) | PgcError::TraceFormat(_)) => {}
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
        // Exactly one clean cut per event boundary (the 8-byte header).
        assert_eq!(boundary_cuts, events.len(), "one Ok per boundary");
        // The same property holds for the slice decoder over the body.
        let body = &buf[8..];
        for cut in 0..body.len() {
            let mut pos = 0;
            let mut decoded = Vec::new();
            let result = loop {
                match decode_event(&body[..cut], &mut pos) {
                    Ok(Some(e)) => decoded.push(e),
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            if result.is_ok() {
                assert_eq!(decoded[..], events[..decoded.len()], "cut {cut}");
            }
        }
    }
}
