//! Application events — the vocabulary of traces.
//!
//! A trace is a sequence of [`Event`]s referencing objects by [`NodeId`], a
//! dense id assigned by the workload in creation order. Using workload-level
//! ids (rather than database `Oid`s) keeps traces independent of the
//! database implementation: the simulator maintains the `NodeId → Oid`
//! mapping during replay. This mirrors the paper's setup, where the same
//! trace drives every policy's simulation.

use pgc_types::Bytes;
use std::fmt;

/// Workload-level object identifier: the `n`-th object the trace creates
/// has `NodeId(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Index as `usize` for dense tables.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n#{}", self.0)
    }
}

/// One application event.
///
/// Creation events carry the id the new object *must* receive (`node`),
/// which the generator assigns densely; replay asserts the ordering is
/// consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Create a database root object (a new tree root).
    CreateRoot {
        /// Id the new object receives.
        node: NodeId,
        /// Object size in bytes.
        size: Bytes,
        /// Number of pointer slots (2 for binary tree nodes).
        slots: u16,
    },
    /// Create an object and link it from `parent.parent_slot` (placement
    /// near the parent is the database's job).
    CreateChild {
        /// Id the new object receives.
        node: NodeId,
        /// The already-created parent.
        parent: NodeId,
        /// Which of the parent's slots points at the new object.
        parent_slot: u16,
        /// Object size in bytes.
        size: Bytes,
        /// Number of pointer slots on the new object.
        slots: u16,
    },
    /// Store `new` into `owner.slot` (a pointer write; `None` deletes the
    /// edge; overwriting a non-null slot is the paper's GC trigger event).
    WritePointer {
        /// Object whose slot is written.
        owner: NodeId,
        /// Slot index.
        slot: u16,
        /// New pointer value.
        new: Option<NodeId>,
    },
    /// Append a fresh (null) pointer slot to `owner` — how dense edges get
    /// a slot to live in.
    AddSlot {
        /// Object gaining a slot.
        owner: NodeId,
    },
    /// Visit (read) an object.
    Visit {
        /// Object visited.
        node: NodeId,
    },
    /// Mutate an object's non-pointer data (the 1%-on-visit modification).
    DataWrite {
        /// Object mutated.
        node: NodeId,
    },
}

impl Event {
    /// True for events that create an object.
    pub fn is_creation(&self) -> bool {
        matches!(self, Event::CreateRoot { .. } | Event::CreateChild { .. })
    }

    /// True for pointer-store events (creation links excluded).
    pub fn is_pointer_write(&self) -> bool {
        matches!(self, Event::WritePointer { .. })
    }

    /// True for read events.
    pub fn is_read(&self) -> bool {
        matches!(self, Event::Visit { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let n = NodeId(3);
        assert!(Event::CreateRoot {
            node: n,
            size: Bytes(100),
            slots: 2
        }
        .is_creation());
        assert!(Event::CreateChild {
            node: n,
            parent: NodeId(0),
            parent_slot: 0,
            size: Bytes(100),
            slots: 2
        }
        .is_creation());
        assert!(Event::WritePointer {
            owner: n,
            slot: 0,
            new: None
        }
        .is_pointer_write());
        assert!(Event::Visit { node: n }.is_read());
        assert!(!Event::DataWrite { node: n }.is_read());
        assert!(!Event::AddSlot { owner: n }.is_creation());
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(9).to_string(), "n#9");
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(NodeId(9).as_usize(), 9);
    }
}
