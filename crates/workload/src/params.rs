//! Workload parameters (the test database of Sec. 5).
//!
//! Defaults reproduce the paper's headline configuration; the experiment
//! binaries override `target_allocated` (4–40 MB for Figure 6) and
//! `dense_edge_fraction` (for Table 5's connectivity sweep).

use pgc_types::{Bytes, FxHasher, PgcError, Result};
use std::hash::Hasher as _;

/// Everything that shapes the synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// RNG seed for the generator (the paper reports means over ten seeds).
    pub seed: u64,
    /// Stop generating once this many bytes have been allocated in total
    /// (live + eventual garbage). The paper's headline runs allocate
    /// ~11 MB, of which ~5 MB stays live.
    pub target_allocated: Bytes,
    /// Minimum nodes per augmented binary tree.
    pub tree_nodes_min: u64,
    /// Maximum nodes per augmented binary tree.
    pub tree_nodes_max: u64,
    /// Minimum small-object size (paper: 50 bytes).
    pub object_size_min: u64,
    /// Maximum small-object size (paper: 150 bytes).
    pub object_size_max: u64,
    /// Size of large leaf objects (paper: ~64 KB).
    pub large_object_size: u64,
    /// Fraction of *bytes* contributed by large leaves (paper: ~20%).
    pub large_object_byte_fraction: f64,
    /// Dense edges per tree node; database connectivity ≈ 1 + this
    /// (paper: 1.005 – 1.167 pointers per object).
    pub dense_edge_fraction: f64,
    /// Probability a chosen tree is not traversed this round (paper: 30%).
    pub p_no_traversal: f64,
    /// Probability of a depth-first traversal (paper: 20%).
    pub p_depth_first: f64,
    /// Probability, per tree edge, that a traversal skips the subtree below
    /// it (paper: 5%).
    pub p_skip_edge: f64,
    /// Probability a visited object is modified (paper: 1%).
    pub p_modify_on_visit: f64,
    /// Tree-traversal rounds interleaved per allocation round; calibrates
    /// the edge read/write ratio into the paper's 15–20 band.
    pub traversals_per_round: u32,
    /// Tree-edge deletions per allocation round; calibrates garbage volume
    /// and the collection count (~25 per run via the overwrite trigger).
    pub deletions_per_round: u32,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            seed: 1,
            target_allocated: Bytes::from_mib(11),
            tree_nodes_min: 300,
            tree_nodes_max: 800,
            object_size_min: 50,
            object_size_max: 150,
            large_object_size: 64 * 1024,
            large_object_byte_fraction: 0.20,
            dense_edge_fraction: 0.08,
            p_no_traversal: 0.30,
            p_depth_first: 0.20,
            p_skip_edge: 0.05,
            p_modify_on_visit: 0.01,
            traversals_per_round: 22,
            deletions_per_round: 45,
        }
    }
}

impl WorkloadParams {
    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the allocation target.
    #[must_use]
    pub fn with_target_allocated(mut self, bytes: Bytes) -> Self {
        self.target_allocated = bytes;
        self
    }

    /// Sets the dense-edge fraction (connectivity ≈ 1 + fraction).
    #[must_use]
    pub fn with_dense_edge_fraction(mut self, fraction: f64) -> Self {
        self.dense_edge_fraction = fraction;
        self
    }

    /// Sets the deletions per round (garbage pacing).
    #[must_use]
    pub fn with_deletions_per_round(mut self, n: u32) -> Self {
        self.deletions_per_round = n;
        self
    }

    /// Sets the traversal rounds per allocation round (read pacing).
    #[must_use]
    pub fn with_traversals_per_round(mut self, n: u32) -> Self {
        self.traversals_per_round = n;
        self
    }

    /// A scaled-down configuration for unit tests and doctests
    /// (~0.5 MB allocated, small trees, 8 KB "large" leaves so they fit the
    /// small test databases; runs in milliseconds).
    pub fn small() -> Self {
        Self {
            target_allocated: Bytes::from_kib(512),
            tree_nodes_min: 40,
            tree_nodes_max: 120,
            large_object_size: 8 * 1024,
            traversals_per_round: 4,
            deletions_per_round: 10,
            ..Self::default()
        }
    }

    /// The probability that a newly created *leaf* is a large object,
    /// derived so that large leaves contribute
    /// [`WorkloadParams::large_object_byte_fraction`] of allocated bytes.
    ///
    /// With mean small size `s`, large size `L`, leaf fraction `q` of all
    /// nodes, and per-leaf large probability `p`:
    /// `frac = q·p·L / (q·p·L + (1 − q·p)·s)`, solved for `p`.
    pub fn large_leaf_probability(&self) -> f64 {
        let s = (self.object_size_min + self.object_size_max) as f64 / 2.0;
        let l = self.large_object_size as f64;
        let frac = self.large_object_byte_fraction.clamp(0.0, 0.95);
        if frac <= 0.0 || l <= s {
            return 0.0;
        }
        // Roughly half the nodes of a binary tree are leaves.
        let q = 0.5;
        // q*p*L = frac * (q*p*L + (1-q*p)*s)  =>
        // q*p*(L*(1-frac) + frac*s) = frac*s  =>
        let p = frac * s / (q * (l * (1.0 - frac) + frac * s));
        p.clamp(0.0, 1.0)
    }

    /// Expected database connectivity (pointers per object).
    pub fn expected_connectivity(&self) -> f64 {
        // Each n-node tree carries n−1 tree edges plus
        // dense_edge_fraction·n dense edges.
        let n = (self.tree_nodes_min + self.tree_nodes_max) as f64 / 2.0;
        (n - 1.0) / n + self.dense_edge_fraction
    }

    /// A digest over every field, keying the shared-trace cache
    /// ([`crate::encoded::TraceCache`]): parameter sets that digest equally
    /// (and compare equal — the cache double-checks) generate identical
    /// traces, because the generator is a pure function of its parameters.
    /// Floats are hashed by bit pattern, so `0.2` and `0.2000…1` differ.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(self.seed);
        h.write_u64(self.target_allocated.get());
        h.write_u64(self.tree_nodes_min);
        h.write_u64(self.tree_nodes_max);
        h.write_u64(self.object_size_min);
        h.write_u64(self.object_size_max);
        h.write_u64(self.large_object_size);
        h.write_u64(self.large_object_byte_fraction.to_bits());
        h.write_u64(self.dense_edge_fraction.to_bits());
        h.write_u64(self.p_no_traversal.to_bits());
        h.write_u64(self.p_depth_first.to_bits());
        h.write_u64(self.p_skip_edge.to_bits());
        h.write_u64(self.p_modify_on_visit.to_bits());
        h.write_u32(self.traversals_per_round);
        h.write_u32(self.deletions_per_round);
        h.finish()
    }

    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.tree_nodes_min < 2 || self.tree_nodes_min > self.tree_nodes_max {
            return Err(PgcError::InvalidConfig(
                "tree node bounds must satisfy 2 <= min <= max",
            ));
        }
        if self.object_size_min == 0 || self.object_size_min > self.object_size_max {
            return Err(PgcError::InvalidConfig(
                "object size bounds must satisfy 0 < min <= max",
            ));
        }
        if self.target_allocated.is_zero() {
            return Err(PgcError::InvalidConfig("target_allocated must be positive"));
        }
        for (p, name) in [
            (self.p_no_traversal, "p_no_traversal"),
            (self.p_depth_first, "p_depth_first"),
            (self.p_skip_edge, "p_skip_edge"),
            (self.p_modify_on_visit, "p_modify_on_visit"),
            (self.dense_edge_fraction, "dense_edge_fraction"),
            (
                self.large_object_byte_fraction,
                "large_object_byte_fraction",
            ),
        ] {
            if !(0.0..=1.0).contains(&p) {
                let _ = name;
                return Err(PgcError::InvalidConfig("probabilities must be in [0, 1]"));
            }
        }
        if self.p_no_traversal + self.p_depth_first > 1.0 {
            return Err(PgcError::InvalidConfig(
                "traversal mix probabilities exceed 1",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_5() {
        let p = WorkloadParams::default();
        assert_eq!(p.object_size_min, 50);
        assert_eq!(p.object_size_max, 150);
        assert_eq!(p.large_object_size, 64 * 1024);
        assert!((p.large_object_byte_fraction - 0.20).abs() < 1e-9);
        assert!((p.p_no_traversal - 0.30).abs() < 1e-9);
        assert!((p.p_depth_first - 0.20).abs() < 1e-9);
        assert!((p.p_skip_edge - 0.05).abs() < 1e-9);
        assert!((p.p_modify_on_visit - 0.01).abs() < 1e-9);
        p.validate().unwrap();
    }

    #[test]
    fn large_leaf_probability_yields_target_byte_fraction() {
        let p = WorkloadParams::default();
        let prob = p.large_leaf_probability();
        assert!(prob > 0.0 && prob < 0.05, "prob = {prob}");
        // Reconstruct the byte fraction from the derived probability.
        let s = 100.0f64;
        let l = p.large_object_size as f64;
        let q = 0.5;
        let frac = q * prob * l / (q * prob * l + (1.0 - q * prob) * s);
        assert!((frac - 0.20).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn large_leaf_probability_zero_when_disabled() {
        let p = WorkloadParams {
            large_object_byte_fraction: 0.0,
            ..WorkloadParams::default()
        };
        assert_eq!(p.large_leaf_probability(), 0.0);
    }

    #[test]
    fn expected_connectivity_tracks_dense_fraction() {
        let p = WorkloadParams::default().with_dense_edge_fraction(0.005);
        let c = p.expected_connectivity();
        assert!((c - 1.003).abs() < 0.01, "c = {c}");
        let p = p.with_dense_edge_fraction(0.167);
        assert!(p.expected_connectivity() > 1.16);
    }

    #[test]
    fn validation_catches_bad_bounds() {
        let p = WorkloadParams {
            tree_nodes_min: 1,
            ..WorkloadParams::default()
        };
        assert!(p.validate().is_err());
        let p = WorkloadParams {
            object_size_min: 200,
            ..WorkloadParams::default()
        };
        assert!(p.validate().is_err());
        let p = WorkloadParams {
            p_skip_edge: 1.5,
            ..WorkloadParams::default()
        };
        assert!(p.validate().is_err());
        let p = WorkloadParams {
            p_no_traversal: 0.7,
            p_depth_first: 0.5,
            ..WorkloadParams::default()
        };
        assert!(p.validate().is_err());
        let p = WorkloadParams {
            target_allocated: Bytes::ZERO,
            ..WorkloadParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn digest_separates_every_field_and_is_stable() {
        let base = WorkloadParams::default();
        assert_eq!(base.digest(), WorkloadParams::default().digest());
        let variants = [
            base.clone().with_seed(2),
            base.clone().with_target_allocated(Bytes::from_mib(12)),
            base.clone().with_dense_edge_fraction(0.081),
            base.clone().with_deletions_per_round(44),
            base.clone().with_traversals_per_round(23),
            WorkloadParams {
                p_skip_edge: 0.051,
                ..base.clone()
            },
            WorkloadParams {
                large_object_size: 65 * 1024,
                ..base.clone()
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base.digest(), v.digest(), "variant {i} collided");
        }
    }

    #[test]
    fn small_config_is_valid_and_small() {
        let p = WorkloadParams::small();
        p.validate().unwrap();
        assert!(p.target_allocated < Bytes::from_mib(1));
    }
}
