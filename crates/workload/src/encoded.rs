//! Shared encoded traces: generate once, replay many.
//!
//! The paper's evaluation is trace-driven — one recorded application trace
//! drives every policy with byte-identical input — yet a naive experiment
//! grid re-runs the synthetic generator (mirror bookkeeping, attachment
//! walks, per-node allocations) independently for every `(policy, seed)`
//! job. This module is the generate-once / replay-many engine behind
//! `pgc-sim`'s experiment scheduler:
//!
//! * [`EncodedTrace`] — one workload's whole event stream as a single
//!   contiguous byte buffer in the PGCT body layout of [`crate::trace`]
//!   (~12 bytes/event, a fraction of `size_of::<Event>()`), with a
//!   [`TraceHeader`] carrying the seed, event count, and generator
//!   counters. Recorded once per parameter set by [`EncodedTrace::record`].
//! * [`TraceCursor`] — a zero-allocation iterator that decodes events on
//!   the fly straight from the shared buffer; replaying a trace never
//!   materializes an intermediate `Vec<Event>`.
//! * [`TraceCache`] — an `Arc`-sharing cache keyed by
//!   [`WorkloadParams::digest`], so concurrent experiment workers record
//!   each distinct trace exactly once and replay it from shared memory.
//! * [`TraceSegment`] — a refcounted handle onto a byte range of a shared
//!   trace. A server data plane ships segments instead of `Vec<Event>`
//!   batches: submitting one is an `Arc` bump plus three integers, however
//!   many events it spans. Traces record event-boundary byte marks every
//!   [`crate::block::BLOCK_EVENTS`] events, so carving a trace into
//!   block-aligned segments is pure arithmetic (unaligned splits scan from
//!   the nearest mark).
//!
//! Replay is bit-identical to live generation by construction: the
//! generator is a pure function of its parameters and the codec round-trips
//! exactly (pinned by tests here and in `pgc-sim`).

use crate::event::Event;
use crate::generator::{GenStats, SyntheticWorkload};
use crate::params::WorkloadParams;
use crate::trace;
use pgc_types::{FastHashMap, Result};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Metadata recorded alongside the encoded event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// The generator seed (`params.seed`, duplicated for convenience).
    pub seed: u64,
    /// Number of events in the stream.
    pub events: u64,
    /// Generator counters accumulated while recording ([`GenStats::default`]
    /// when the trace was built from raw events rather than recorded).
    pub stats: GenStats,
}

/// One workload's event stream, encoded into a single contiguous buffer.
///
/// ```
/// use pgc_workload::{EncodedTrace, WorkloadParams};
///
/// let trace = EncodedTrace::record(WorkloadParams::small().with_seed(3)).unwrap();
/// assert_eq!(trace.seed(), 3);
/// let decoded = trace.cursor().count() as u64;
/// assert_eq!(decoded, trace.events());
/// ```
#[derive(Debug, Clone)]
pub struct EncodedTrace {
    header: TraceHeader,
    params: WorkloadParams,
    buf: Vec<u8>,
    /// Byte offset after every [`MARK_EVERY`]th event: `marks[k]` is the
    /// position just past event `(k + 1) * MARK_EVERY`. Lets
    /// [`EncodedTrace::segments`] carve block-aligned segments without
    /// scanning the variable-length byte stream.
    marks: Vec<usize>,
}

/// Event interval between recorded byte marks — one mark per decode block,
/// so block-sized segmentation never scans.
pub const MARK_EVERY: u64 = crate::block::BLOCK_EVENTS as u64;

impl EncodedTrace {
    /// Runs the synthetic generator for `params` and encodes its entire
    /// output. This is the *only* generator execution a shared-trace
    /// experiment pays per parameter set, however many policies replay it.
    pub fn record(params: WorkloadParams) -> Result<Self> {
        let mut generator = SyntheticWorkload::new(params.clone())?;
        // The paper trace runs ~12.4 bytes/event and one event per ~21
        // allocated bytes; seed the buffer near that to avoid regrowth.
        let mut buf = Vec::with_capacity((params.target_allocated.get() / 2).min(1 << 28) as usize);
        let mut marks = Vec::new();
        let mut events = 0u64;
        for event in generator.by_ref() {
            trace::encode_event(&mut buf, &event);
            events += 1;
            if events.is_multiple_of(MARK_EVERY) {
                marks.push(buf.len());
            }
        }
        buf.shrink_to_fit();
        Ok(Self {
            header: TraceHeader {
                seed: params.seed,
                events,
                stats: generator.stats(),
            },
            params,
            buf,
            marks,
        })
    }

    /// Encodes an explicit event sequence (e.g. an assembly workload or a
    /// hand-built test stream). `params` labels the trace for cache keying;
    /// the header's generator counters are zeroed.
    pub fn from_events<'a>(
        params: WorkloadParams,
        events: impl IntoIterator<Item = &'a Event>,
    ) -> Self {
        let mut buf = Vec::new();
        let mut marks = Vec::new();
        let mut count = 0u64;
        for event in events {
            trace::encode_event(&mut buf, event);
            count += 1;
            if count.is_multiple_of(MARK_EVERY) {
                marks.push(buf.len());
            }
        }
        Self {
            header: TraceHeader {
                seed: params.seed,
                events: count,
                stats: GenStats::default(),
            },
            params,
            buf,
            marks,
        }
    }

    /// The trace metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The parameters the trace was recorded from.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.header.seed
    }

    /// Number of events in the stream.
    pub fn events(&self) -> u64 {
        self.header.events
    }

    /// Generator counters recorded with the trace.
    pub fn stats(&self) -> GenStats {
        self.header.stats
    }

    /// Size of the encoded stream in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// A fresh decoding cursor over the shared buffer.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            buf: &self.buf,
            pos: 0,
            decoded: 0,
            expected: self.header.events,
        }
    }

    /// Decodes the whole stream into a vector (diagnostics and tests; the
    /// simulator replays through [`EncodedTrace::cursor`] instead).
    pub fn decode_all(&self) -> Result<Vec<Event>> {
        let mut out = Vec::with_capacity(self.header.events as usize);
        let mut cursor = self.cursor();
        while let Some(event) = cursor.next_event()? {
            out.push(event);
        }
        Ok(out)
    }

    /// Byte offset of the event boundary after `event` events: `0` for the
    /// start of the stream, `byte_len()` for its end. Boundaries at
    /// multiples of [`MARK_EVERY`] resolve from the recorded marks in O(1);
    /// others scan forward from the nearest mark (at most one block's worth
    /// of tag-skipping).
    fn byte_pos_of(&self, event: u64) -> Result<usize> {
        debug_assert!(event <= self.header.events);
        if event == 0 {
            return Ok(0);
        }
        if event == self.header.events {
            return Ok(self.buf.len());
        }
        let whole_marks = (event / MARK_EVERY) as usize;
        let mut pos = if whole_marks == 0 {
            0
        } else {
            self.marks[whole_marks - 1]
        };
        for _ in 0..(event % MARK_EVERY) {
            if trace::decode_event(&self.buf, &mut pos)?.is_none() {
                return Err(pgc_types::PgcError::TraceFormat(format!(
                    "encoded trace ended before event {event}"
                )));
            }
        }
        Ok(pos)
    }

    /// Carves a shared trace into consecutive [`TraceSegment`]s of at most
    /// `max_events` events each (the last takes the remainder). Each
    /// segment is an `Arc` bump plus a byte range — no event is copied.
    /// When `max_events` is a multiple of [`MARK_EVERY`] the boundaries
    /// come straight from the recorded marks; otherwise each split scans at
    /// most one mark interval.
    pub fn segments(trace: &Arc<Self>, max_events: u64) -> Result<Vec<TraceSegment>> {
        assert!(max_events >= 1, "segments must hold at least one event");
        let total = trace.header.events;
        let mut out = Vec::with_capacity(total.div_ceil(max_events.max(1)) as usize);
        let mut start_event = 0u64;
        let mut start_byte = 0usize;
        while start_event < total {
            let end_event = (start_event + max_events).min(total);
            let end_byte = trace.byte_pos_of(end_event)?;
            out.push(TraceSegment {
                trace: Arc::clone(trace),
                start: start_byte,
                end: end_byte,
                events: end_event - start_event,
            });
            start_event = end_event;
            start_byte = end_byte;
        }
        Ok(out)
    }

    /// Chops `n` bytes off the encoded buffer (corruption-path tests).
    #[cfg(test)]
    pub(crate) fn truncate_for_test(&mut self, n: usize) {
        let len = self.buf.len().saturating_sub(n);
        self.buf.truncate(len);
    }

    /// Writes the stream as a PGCT trace file (magic + version header
    /// followed by the body this trace already holds), returning the event
    /// count. The output is byte-identical to recording the same workload
    /// through [`crate::trace::TraceWriter`].
    pub fn write_to<W: Write>(&self, mut sink: W) -> Result<u64> {
        let io_err = |e: std::io::Error| pgc_types::PgcError::TraceIo(e.to_string());
        sink.write_all(trace::MAGIC).map_err(io_err)?;
        sink.write_all(&trace::VERSION.to_le_bytes())
            .map_err(io_err)?;
        sink.write_all(&self.buf).map_err(io_err)?;
        sink.flush().map_err(io_err)?;
        Ok(self.header.events)
    }
}

/// Zero-allocation decoding iterator over an [`EncodedTrace`].
///
/// Events decode on the fly into the `Event` value the iterator yields
/// (`Event` is `Copy`); nothing is allocated per event and the underlying
/// buffer is shared, so any number of cursors can replay one trace
/// concurrently.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    decoded: u64,
    expected: u64,
}

impl TraceCursor<'_> {
    /// Decodes the next event, or `Ok(None)` at the end of the stream.
    /// Errors only on a corrupt buffer (impossible for traces built by
    /// [`EncodedTrace::record`], which owns its encoding end to end).
    #[inline]
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        let event = trace::decode_event(self.buf, &mut self.pos)?;
        if event.is_some() {
            self.decoded += 1;
        } else if self.decoded != self.expected {
            return Err(pgc_types::PgcError::TraceFormat(format!(
                "encoded trace ended after {} of {} events",
                self.decoded, self.expected
            )));
        }
        Ok(event)
    }

    /// Decodes up to [`crate::block::BLOCK_EVENTS`] events into `block`
    /// (cleared first), returning how many were decoded — `0` at the end of
    /// the stream. The struct-of-arrays entry point behind batched replay:
    /// the caller loops `next_block` and applies each run from the block's
    /// flat columns, reusing one block for the whole trace.
    #[inline]
    pub fn next_block(&mut self, block: &mut crate::block::EventBlock) -> Result<usize> {
        block.clear();
        while block.len() < crate::block::BLOCK_EVENTS {
            match self.next_event()? {
                Some(event) => block.push(&event),
                None => break,
            }
        }
        Ok(block.len())
    }

    /// Events decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Events left to decode, from the header count. Lets a replay loop
    /// size batches (e.g. stop a block at a sampling boundary) without
    /// probing the byte stream.
    pub fn remaining_events(&self) -> u64 {
        self.expected.saturating_sub(self.decoded)
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = Event;

    /// Iterator view for trusted in-memory traces; panics on a corrupt
    /// buffer (use [`TraceCursor::next_event`] to handle errors).
    fn next(&mut self) -> Option<Event> {
        self.next_event().expect("corrupt encoded trace")
    }
}

/// A refcounted handle onto a byte range of a shared [`EncodedTrace`].
///
/// This is the zero-copy unit of a server data plane: where a `Vec<Event>`
/// batch deep-copies (and re-allocates) every event it ships, a segment is
/// an `Arc` bump plus a byte range — the events stay in the shared encoded
/// buffer and decode straight into the consumer's reusable
/// [`crate::block::EventBlock`] scratch. Cloning a segment is O(1)
/// whatever it spans.
///
/// ```
/// use pgc_workload::{EncodedTrace, TraceSegment, WorkloadParams};
/// use std::sync::Arc;
///
/// let trace = Arc::new(EncodedTrace::record(WorkloadParams::small().with_seed(3)).unwrap());
/// let segments = EncodedTrace::segments(&trace, 4096).unwrap();
/// let replayed: u64 = segments.iter().map(|s| s.cursor().count() as u64).sum();
/// assert_eq!(replayed, trace.events());
/// ```
#[derive(Debug, Clone)]
pub struct TraceSegment {
    trace: Arc<EncodedTrace>,
    start: usize,
    end: usize,
    events: u64,
}

impl TraceSegment {
    /// The whole trace as one segment.
    pub fn whole(trace: Arc<EncodedTrace>) -> Self {
        let end = trace.buf.len();
        let events = trace.header.events;
        Self {
            trace,
            start: 0,
            end,
            events,
        }
    }

    /// Encodes an event slice into a fresh single-segment trace — the
    /// compatibility bridge for callers still holding decoded events. Pays
    /// one encode pass (~12 bytes/event retained, versus
    /// `size_of::<Event>()` for a cloned `Vec`); after that the segment
    /// ships and replays like any other.
    pub fn encode(events: &[Event]) -> Self {
        Self::whole(Arc::new(EncodedTrace::from_events(
            WorkloadParams::default(),
            events,
        )))
    }

    /// Events the segment spans.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// True when the segment spans no events.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Size of the segment's byte range.
    pub fn byte_len(&self) -> usize {
        self.end - self.start
    }

    /// The shared trace the segment points into.
    pub fn trace(&self) -> &Arc<EncodedTrace> {
        &self.trace
    }

    /// A decoding cursor over exactly this segment's events.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            buf: &self.trace.buf[self.start..self.end],
            pos: 0,
            decoded: 0,
            expected: self.events,
        }
    }
}

/// One digest bucket: every recorded trace whose parameters share a digest.
type CacheBucket = Vec<(WorkloadParams, Arc<EncodedTrace>)>;

/// An `Arc`-sharing trace cache keyed by [`WorkloadParams::digest`].
///
/// The experiment scheduler in `pgc-sim` records each distinct parameter
/// set once and fans the `Arc` out to every policy worker. Digest
/// collisions are survived, not assumed away: entries store their full
/// parameters and a hit requires equality.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<FastHashMap<u64, CacheBucket>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The trace for `params`, if already recorded.
    pub fn get(&self, params: &WorkloadParams) -> Option<Arc<EncodedTrace>> {
        let entries = self.entries.lock().expect("trace cache poisoned");
        entries
            .get(&params.digest())?
            .iter()
            .find(|(p, _)| p == params)
            .map(|(_, t)| Arc::clone(t))
    }

    /// The trace for `params`, recording it first if absent. Recording runs
    /// outside the lock (it is the expensive part); if two threads race on
    /// the same parameters the first insertion wins and both return the
    /// same shared trace.
    pub fn get_or_record(&self, params: &WorkloadParams) -> Result<Arc<EncodedTrace>> {
        if let Some(hit) = self.get(params) {
            return Ok(hit);
        }
        let recorded = Arc::new(EncodedTrace::record(params.clone())?);
        let mut entries = self.entries.lock().expect("trace cache poisoned");
        let bucket = entries.entry(params.digest()).or_default();
        if let Some((_, existing)) = bucket.iter().find(|(p, _)| p == params) {
            return Ok(Arc::clone(existing));
        }
        bucket.push((params.clone(), Arc::clone(&recorded)));
        Ok(recorded)
    }

    /// Number of distinct traces held.
    pub fn len(&self) -> usize {
        let entries = self.entries.lock().expect("trace cache poisoned");
        entries.values().map(Vec::len).sum()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes held across all encoded streams.
    pub fn resident_bytes(&self) -> usize {
        let entries = self.entries.lock().expect("trace cache poisoned");
        entries.values().flatten().map(|(_, t)| t.byte_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{read_trace, write_trace};

    fn small(seed: u64) -> WorkloadParams {
        WorkloadParams::small().with_seed(seed)
    }

    #[test]
    fn record_matches_live_generation_exactly() {
        let trace = EncodedTrace::record(small(5)).unwrap();
        let mut live = SyntheticWorkload::new(small(5)).unwrap();
        let events: Vec<Event> = live.by_ref().collect();
        assert_eq!(trace.events(), events.len() as u64);
        assert_eq!(trace.stats(), live.stats());
        assert_eq!(trace.seed(), 5);
        assert_eq!(trace.decode_all().unwrap(), events);
        // Cursor iteration agrees with bulk decoding.
        let streamed: Vec<Event> = trace.cursor().collect();
        assert_eq!(streamed, events);
    }

    #[test]
    fn cursor_is_restartable_and_tracks_progress() {
        let trace = EncodedTrace::record(small(6)).unwrap();
        let mut a = trace.cursor();
        let first = a.next_event().unwrap().unwrap();
        assert_eq!(a.decoded(), 1);
        // A second cursor starts from the beginning, independently.
        let mut b = trace.cursor();
        assert_eq!(b.next_event().unwrap().unwrap(), first);
        // Draining reaches the recorded count.
        let mut c = trace.cursor();
        while c.next_event().unwrap().is_some() {}
        assert_eq!(c.decoded(), trace.events());
    }

    #[test]
    fn from_events_round_trips_arbitrary_streams() {
        let events = vec![
            Event::CreateRoot {
                node: crate::NodeId(0),
                size: pgc_types::Bytes(100),
                slots: 2,
            },
            Event::Visit {
                node: crate::NodeId(0),
            },
        ];
        let trace = EncodedTrace::from_events(small(1), &events);
        assert_eq!(trace.events(), 2);
        assert_eq!(trace.stats(), GenStats::default());
        assert_eq!(trace.decode_all().unwrap(), events);
    }

    #[test]
    fn write_to_is_byte_identical_to_the_file_codec() {
        let params = small(7);
        let trace = EncodedTrace::record(params.clone()).unwrap();
        let events: Vec<Event> = SyntheticWorkload::new(params).unwrap().collect();
        let mut via_writer = Vec::new();
        write_trace(&mut via_writer, &events).unwrap();
        let mut via_encoded = Vec::new();
        trace.write_to(&mut via_encoded).unwrap();
        assert_eq!(via_encoded, via_writer);
        assert_eq!(read_trace(via_encoded.as_slice()).unwrap(), events);
    }

    #[test]
    fn truncated_buffer_is_detected_by_the_cursor() {
        let full = EncodedTrace::record(small(8)).unwrap();
        let mut corrupt = full.clone();
        corrupt.buf.truncate(corrupt.buf.len() - 3);
        let mut cursor = corrupt.cursor();
        let err = loop {
            match cursor.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncation must not decode cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, pgc_types::PgcError::TraceFormat(_)));
        // Truncating at an event boundary is caught by the header count.
        let boundary = {
            let mut t = full.clone();
            let mut cursor = t.cursor();
            cursor.next_event().unwrap();
            let first_len = cursor.pos;
            t.buf.truncate(first_len);
            t
        };
        let mut cursor = boundary.cursor();
        cursor.next_event().unwrap();
        let err = cursor.next_event().unwrap_err();
        assert!(
            err.to_string().contains("ended after"),
            "count mismatch must be reported, got {err}"
        );
    }

    #[test]
    fn segments_tile_the_trace_exactly() {
        let trace = Arc::new(EncodedTrace::record(small(12)).unwrap());
        let all: Vec<Event> = trace.cursor().collect();
        // Aligned (mark-resolved), unaligned (scan-resolved), and
        // degenerate (single-segment) carvings must all tile the stream.
        for max_events in [MARK_EVERY, 1000, 97, trace.events() + 1] {
            let segments = EncodedTrace::segments(&trace, max_events).unwrap();
            let mut replayed = Vec::with_capacity(all.len());
            let mut bytes = 0usize;
            for seg in &segments {
                assert!(seg.events() <= max_events);
                assert!(!seg.is_empty());
                let mut cursor = seg.cursor();
                while let Some(e) = cursor.next_event().unwrap() {
                    replayed.push(e);
                }
                assert_eq!(cursor.decoded(), seg.events());
                bytes += seg.byte_len();
            }
            assert_eq!(replayed, all, "segment size {max_events}");
            assert_eq!(bytes, trace.byte_len(), "segment size {max_events}");
        }
    }

    #[test]
    fn whole_and_encode_segments_round_trip() {
        let trace = Arc::new(EncodedTrace::record(small(13)).unwrap());
        let whole = TraceSegment::whole(Arc::clone(&trace));
        assert_eq!(whole.events(), trace.events());
        assert_eq!(whole.byte_len(), trace.byte_len());
        assert!(Arc::ptr_eq(whole.trace(), &trace));
        let events = trace.decode_all().unwrap();
        let encoded = TraceSegment::encode(&events);
        let back: Vec<Event> = encoded.cursor().collect();
        assert_eq!(back, events);
        // Cloning a segment shares the underlying trace.
        let clone = whole.clone();
        assert!(Arc::ptr_eq(clone.trace(), whole.trace()));
    }

    #[test]
    fn segment_cursor_feeds_blocks() {
        let trace = Arc::new(EncodedTrace::record(small(14)).unwrap());
        let segments = EncodedTrace::segments(&trace, 1500).unwrap();
        let mut block = crate::block::EventBlock::new();
        let mut replayed = Vec::new();
        for seg in &segments {
            let mut cursor = seg.cursor();
            while cursor.next_block(&mut block).unwrap() > 0 {
                replayed.extend(block.iter());
            }
        }
        assert_eq!(replayed, trace.decode_all().unwrap());
    }

    /// A deterministic synthetic event stream of exactly `n` events (no
    /// generator involved, so edge sizes like 0 or one-block-exactly are
    /// trivial to hit).
    fn synthetic_events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Event::CreateRoot {
                        node: crate::NodeId(i as u64),
                        size: pgc_types::Bytes(64 + (i % 7) as u64 * 16),
                        slots: 1 + (i % 4) as u16,
                    }
                } else {
                    Event::Visit {
                        node: crate::NodeId((i / 3) as u64),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn an_empty_trace_carves_and_cursors_cleanly() {
        let trace = Arc::new(EncodedTrace::from_events(small(20), &[]));
        assert_eq!(trace.events(), 0);
        assert!(trace.cursor().next_event().unwrap().is_none());
        assert!(EncodedTrace::segments(&trace, 1).unwrap().is_empty());
        assert!(EncodedTrace::segments(&trace, MARK_EVERY)
            .unwrap()
            .is_empty());
        // The whole-trace segment of an empty trace is itself empty.
        let whole = TraceSegment::whole(Arc::clone(&trace));
        assert_eq!(whole.events(), 0);
        assert!(whole.is_empty());
        assert!(whole.cursor().next_event().unwrap().is_none());
    }

    #[test]
    fn exactly_one_mark_boundary_is_carved_without_scanning_past_it() {
        // Exactly MARK_EVERY events: the single interior mark coincides
        // with the end of the stream, so every carving must resolve end
        // positions without running off the buffer.
        let events = synthetic_events(MARK_EVERY as usize);
        let trace = Arc::new(EncodedTrace::from_events(small(21), &events));
        for max_events in [MARK_EVERY, MARK_EVERY - 1, 1] {
            let segments = EncodedTrace::segments(&trace, max_events).unwrap();
            let replayed: Vec<Event> = segments
                .iter()
                .flat_map(|seg| seg.cursor().collect::<Vec<Event>>())
                .collect();
            assert_eq!(replayed, events, "carve width {max_events}");
            assert_eq!(
                segments.iter().map(TraceSegment::byte_len).sum::<usize>(),
                trace.byte_len()
            );
        }
        // The one-segment carve is the whole trace.
        let one = EncodedTrace::segments(&trace, MARK_EVERY).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].events(), MARK_EVERY);
    }

    #[test]
    fn unaligned_split_lands_inside_the_final_partial_block() {
        // One full block plus a 37-event tail; a carve width beyond the
        // last mark forces the byte-position scan through the partial
        // final block.
        let events = synthetic_events(MARK_EVERY as usize + 37);
        let trace = Arc::new(EncodedTrace::from_events(small(22), &events));
        let width = MARK_EVERY + 13;
        let segments = EncodedTrace::segments(&trace, width).unwrap();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].events(), width);
        assert_eq!(segments[1].events(), MARK_EVERY + 37 - width);
        let replayed: Vec<Event> = segments
            .iter()
            .flat_map(|seg| seg.cursor().collect::<Vec<Event>>())
            .collect();
        assert_eq!(replayed, events);
    }

    #[test]
    fn carving_round_trips_across_sizes_and_widths() {
        // Proptest-style sweep: pseudo-random trace sizes × carve widths,
        // all pinned to one seed so failures reproduce. Every carving of
        // every stream must replay exactly like the whole-trace cursor.
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move |bound: u64| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng % bound.max(1)
        };
        for _ in 0..12 {
            let size = next(3 * MARK_EVERY) as usize;
            let events = synthetic_events(size);
            let trace = Arc::new(EncodedTrace::from_events(small(23), &events));
            let whole: Vec<Event> = trace.cursor().collect();
            assert_eq!(whole, events);
            for _ in 0..4 {
                let width = 1 + next(MARK_EVERY + MARK_EVERY / 2);
                let segments = EncodedTrace::segments(&trace, width).unwrap();
                assert_eq!(
                    segments.iter().map(TraceSegment::events).sum::<u64>(),
                    size as u64,
                    "size {size} width {width}"
                );
                let replayed: Vec<Event> = segments
                    .iter()
                    .flat_map(|seg| seg.cursor().collect::<Vec<Event>>())
                    .collect();
                assert_eq!(replayed, whole, "size {size} width {width}");
            }
        }
    }

    #[test]
    fn cache_records_each_parameter_set_once() {
        let cache = TraceCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_record(&small(1)).unwrap();
        let b = cache.get_or_record(&small(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        assert_eq!(cache.len(), 1);
        let c = cache.get_or_record(&small(2)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() >= a.byte_len() + c.byte_len());
        assert!(cache.get(&small(3)).is_none());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = TraceCache::new();
        let traces: Vec<Arc<EncodedTrace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cache.get_or_record(&small(9)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(cache.len(), 1, "racing recorders converge on one entry");
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }
}
