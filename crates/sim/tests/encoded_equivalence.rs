//! The shared-trace engine's core guarantee, pinned end to end: replaying
//! a recorded [`EncodedTrace`] through the builder's `.trace(..)` source is
//! bit-identical to a live-generator run — same `RunTotals`, same victim
//! sequence (every [`CollectionOutcome`], in order), same statistics — for
//! every policy, across seeds, on both the small and the (scaled-down)
//! paper configuration. This is what makes it sound for [`Experiment`] to
//! record once per seed and fan the trace out to all policy workers.

use pgc_core::PolicyKind;
use pgc_sim::{Experiment, RunConfig, Simulation};
use pgc_workload::{EncodedTrace, TraceCache};

/// Asserts live and encoded replays agree on everything observable.
fn assert_equivalent(cfg: &RunConfig, label: &str) {
    let live = Simulation::builder(cfg).run().expect("live run");
    let trace = EncodedTrace::record(cfg.workload.clone()).expect("record");
    let encoded = Simulation::builder(cfg)
        .trace(&trace)
        .run()
        .expect("encoded run");

    assert_eq!(live.totals, encoded.totals, "totals diverged: {label}");
    assert_eq!(
        live.collections, encoded.collections,
        "victim sequence diverged: {label}"
    );
    assert_eq!(
        live.db_stats, encoded.db_stats,
        "db stats diverged: {label}"
    );
    assert_eq!(
        live.gen_stats, encoded.gen_stats,
        "generator stats diverged: {label}"
    );
    assert_eq!(live.policy, encoded.policy);
    assert_eq!(live.seed, encoded.seed);
}

#[test]
fn all_policies_small_config_seeds_0_to_9() {
    for seed in 0..10u64 {
        for &policy in PolicyKind::ALL.iter() {
            let cfg = RunConfig::small().with_policy(policy).with_seed(seed);
            assert_equivalent(&cfg, &format!("{policy:?} small seed {seed}"));
        }
    }
}

#[test]
fn all_policies_scaled_paper_config() {
    // The paper configuration at a tenth of the allocation target: the
    // same event vocabulary and object-size mix as the full runs, small
    // enough for every (policy, seed) pair to replay both ways in a test.
    for seed in 0..3u64 {
        for &policy in PolicyKind::ALL.iter() {
            let mut cfg = RunConfig::paper(policy, seed);
            cfg.workload.target_allocated =
                pgc_types::Bytes(cfg.workload.target_allocated.get() / 10);
            assert_equivalent(&cfg, &format!("{policy:?} paper/10 seed {seed}"));
        }
    }
}

#[test]
fn sampling_series_is_also_identical() {
    // Time-series sampling interleaves oracle passes with the replay; the
    // sampled curves must not depend on which side generated the events.
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::MostGarbage)
        .with_seed(4)
        .with_sampling(2000);
    let live = Simulation::builder(&cfg).run().expect("live run");
    let trace = EncodedTrace::record(cfg.workload.clone()).expect("record");
    let encoded = Simulation::builder(&cfg)
        .trace(&trace)
        .run()
        .expect("encoded run");
    assert_eq!(live.series.points(), encoded.series.points());
}

#[test]
fn scheduler_is_thread_count_and_cache_invariant() {
    // The same job grid through the shared-trace scheduler on 1, 2, and 8
    // worker threads, with fresh and shared caches, must produce identical
    // outcomes in identical label order — and the outcomes must not change
    // when every job additionally runs in an intra-run parallel mode
    // (inter-job threads and intra-run workers compose without touching
    // any simulated result).
    let jobs = |intra: pgc_types::Parallelism| -> Vec<(u64, RunConfig)> {
        let mut v = Vec::new();
        for seed in [3u64, 4] {
            for &policy in &[PolicyKind::UpdatedPointer, PolicyKind::Random] {
                v.push((
                    seed * 100,
                    RunConfig::small()
                        .with_policy(policy)
                        .with_seed(seed)
                        .with_parallelism(intra),
                ));
            }
        }
        v
    };
    let base = Experiment::new()
        .with_threads(1)
        .run_jobs(jobs(pgc_types::Parallelism::Serial))
        .expect("sequential");
    let shared = TraceCache::new();
    for threads in [2usize, 8] {
        for intra in [
            pgc_types::Parallelism::Serial,
            pgc_types::Parallelism::Deterministic(1),
            pgc_types::Parallelism::Deterministic(4),
        ] {
            let got = Experiment::new()
                .with_threads(threads)
                .with_cache(&shared)
                .run_jobs(jobs(intra))
                .expect("parallel");
            assert_eq!(got.len(), base.len());
            for ((la, a), (lb, b)) in base.iter().zip(&got) {
                assert_eq!(la, lb, "label order must be preserved");
                assert_eq!(a.totals, b.totals, "threads={threads} intra={intra}");
                assert_eq!(
                    a.collections, b.collections,
                    "threads={threads} intra={intra}"
                );
            }
        }
    }
    // The shared cache holds exactly one trace per distinct seed.
    assert_eq!(shared.len(), 2);
}
