//! The intra-run parallelism contract, pinned end to end:
//! `Parallelism::Deterministic(n)` is **bit-identical** to
//! `Parallelism::Serial` for every `n` — same `RunTotals`, same victim
//! sequence, same database statistics, same telemetry score bits, same
//! shadow-race tables — on both the live-generator and the encoded-trace
//! sources. The parallel kernels (work-stealing reachability marking, the
//! decode-ahead block pipeline, zone-parallel collection planning) may
//! only change wall-clock time, never a simulated outcome.

use pgc_core::PolicyKind;
use pgc_sim::{shadow, RunConfig, RunOutcome, Simulation};
use pgc_types::Parallelism;
use pgc_workload::EncodedTrace;

/// The non-serial modes every invariance test sweeps: one worker (the
/// inline degenerate case) and four (real fan-out).
const MODES: [Parallelism; 2] = [Parallelism::Deterministic(1), Parallelism::Deterministic(4)];

fn run(cfg: &RunConfig, mode: Parallelism) -> RunOutcome {
    Simulation::builder(cfg)
        .parallelism(mode)
        .run()
        .expect("run")
}

/// Asserts a serial run and every parallel mode agree on all observables.
fn assert_mode_invariant(cfg: &RunConfig, label: &str) {
    let base = run(cfg, Parallelism::Serial);
    for mode in MODES {
        let got = run(cfg, mode);
        assert_eq!(base.totals, got.totals, "totals diverged: {label} {mode}");
        assert_eq!(
            base.collections, got.collections,
            "victim sequence diverged: {label} {mode}"
        );
        assert_eq!(
            base.db_stats, got.db_stats,
            "db stats diverged: {label} {mode}"
        );
        assert_eq!(base.series.points(), got.series.points(), "{label} {mode}");
    }
}

#[test]
fn headline_policies_are_mode_invariant_across_seeds_0_to_9() {
    // The three policies the issue pins by name: the oracle (parallel
    // marking), the paper's best implementable policy (derive engine), and
    // the adaptive meta-policy (nested candidate scoreboards).
    for seed in 0..10u64 {
        for policy in [
            PolicyKind::MostGarbage,
            PolicyKind::UpdatedPointer,
            PolicyKind::AdaptiveMeta,
        ] {
            let cfg = RunConfig::small().with_policy(policy).with_seed(seed);
            assert_mode_invariant(&cfg, &format!("{policy:?} small seed {seed}"));
        }
    }
}

#[test]
fn every_policy_is_mode_invariant_on_the_small_config() {
    for seed in 0..3u64 {
        for &policy in PolicyKind::ALL.iter() {
            let cfg = RunConfig::small().with_policy(policy).with_seed(seed);
            assert_mode_invariant(&cfg, &format!("{policy:?} small seed {seed}"));
        }
    }
}

#[test]
fn encoded_replay_is_mode_invariant() {
    // The decode-ahead pipeline only exists on the encoded source; blocks
    // must arrive in stream order and every event must pass through the
    // same apply path, so the replay matches the serial cursor loop (and
    // the live generator) exactly.
    for seed in [0u64, 5] {
        for policy in [PolicyKind::MostGarbage, PolicyKind::UpdatedPointer] {
            let cfg = RunConfig::small().with_policy(policy).with_seed(seed);
            let trace = EncodedTrace::record(cfg.workload.clone()).expect("record");
            let base = Simulation::builder(&cfg)
                .trace(&trace)
                .run()
                .expect("serial encoded run");
            let live = run(&cfg, Parallelism::Serial);
            assert_eq!(base.totals, live.totals, "encoded vs live baseline");
            for mode in MODES {
                let got = Simulation::builder(&cfg)
                    .trace(&trace)
                    .parallelism(mode)
                    .run()
                    .expect("parallel encoded run");
                assert_eq!(base.totals, got.totals, "{policy:?} seed {seed} {mode}");
                assert_eq!(
                    base.collections, got.collections,
                    "{policy:?} seed {seed} {mode}"
                );
                assert_eq!(base.db_stats, got.db_stats, "{policy:?} seed {seed} {mode}");
            }
        }
    }
}

#[test]
fn sampled_series_is_mode_invariant_on_the_encoded_source() {
    // Sampling boundaries interleave oracle passes with block application;
    // the pipeline must split blocks at exactly the same event indices the
    // serial loop samples at.
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::MostGarbage)
        .with_seed(4)
        .with_sampling(2000);
    let trace = EncodedTrace::record(cfg.workload.clone()).expect("record");
    let base = Simulation::builder(&cfg)
        .trace(&trace)
        .run()
        .expect("serial sampled run");
    for mode in MODES {
        let got = Simulation::builder(&cfg)
            .trace(&trace)
            .parallelism(mode)
            .run()
            .expect("parallel sampled run");
        assert_eq!(base.series.points(), got.series.points(), "{mode}");
        assert_eq!(base.totals, got.totals, "{mode}");
    }
}

#[test]
fn zone_batches_are_mode_invariant() {
    // Batched activations route through zone condemnation (remset-disjoint
    // victims, plans computed per zone — in parallel under
    // `Deterministic(n)` — and applied in canonical partition-id order).
    for policy in [PolicyKind::MostGarbage, PolicyKind::UpdatedPointer] {
        for batch in [2u32, 3] {
            let cfg = RunConfig::small()
                .with_policy(policy)
                .with_seed(7)
                .with_collect_batch(batch);
            assert_mode_invariant(&cfg, &format!("{policy:?} batch {batch}"));
        }
    }
}

#[test]
fn telemetry_score_bits_are_mode_invariant() {
    // The determinism spine includes the telemetry tap: per-activation
    // victim scores must match to the bit, not just approximately.
    let cfg = RunConfig::small()
        .with_policy(PolicyKind::UpdatedPointer)
        .with_seed(3);
    let base = Simulation::builder(&cfg)
        .telemetry(pgc_sim::TelemetryLevel::Full)
        .run()
        .expect("serial tapped run");
    let base_snap = base.telemetry.as_ref().expect("snapshot");
    assert!(!base_snap.records.is_empty());
    for mode in MODES {
        let got = Simulation::builder(&cfg)
            .telemetry(pgc_sim::TelemetryLevel::Full)
            .parallelism(mode)
            .run()
            .expect("parallel tapped run");
        let snap = got.telemetry.as_ref().expect("snapshot");
        assert_eq!(base_snap, snap, "telemetry snapshot diverged: {mode}");
        for (a, b) in base_snap.records.iter().zip(&snap.records) {
            assert_eq!(
                a.victim_score.map(f64::to_bits),
                b.victim_score.map(f64::to_bits),
                "score bits diverged at activation {}: {mode}",
                a.activation
            );
        }
    }
}

#[test]
fn shadow_races_and_agreement_tables_are_mode_invariant() {
    // Shadow scoreboards ride the same barrier bus as the driver; a race
    // run under any parallel mode must record identical picks, and the
    // derived agreement/regret tables must match entry for entry.
    let shadows = [
        PolicyKind::MutatedPartition,
        PolicyKind::UpdatedPointer,
        PolicyKind::Random,
    ];
    for seed in [1u64, 6] {
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::MostGarbage)
            .with_seed(seed);
        let base = shadow::run_race(&cfg, &shadows).expect("serial race");
        let base_races = [base];
        for mode in MODES {
            let par_cfg = cfg.clone().with_parallelism(mode);
            let got = shadow::run_race(&par_cfg, &shadows).expect("parallel race");
            assert_eq!(
                base_races[0].records, got.records,
                "race records diverged: seed {seed} {mode}"
            );
            assert_eq!(base_races[0].outcome.totals, got.outcome.totals);
            assert_eq!(base_races[0].outcome.collections, got.outcome.collections);
            let got_races = [got];
            assert_eq!(
                shadow::agreement_table(&base_races),
                shadow::agreement_table(&got_races),
                "agreement table diverged: seed {seed} {mode}"
            );
            assert_eq!(
                shadow::regret_table(&base_races),
                shadow::regret_table(&got_races),
                "regret table diverged: seed {seed} {mode}"
            );
        }
    }
}
