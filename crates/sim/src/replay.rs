//! Applying workload events to a database under a collector.
//!
//! The replayer is the junction of the whole system: every workload event
//! charges its page I/O through the database, which logs typed
//! [`pgc_odb::BarrierEvent`]s; after each operation the replayer pumps the
//! log through [`Collector::sync`], which broadcasts the events to the
//! selection policy (and any shadow observers) and reports whether the
//! trigger fired. Collections run the moment it does — matching the
//! paper's setup, in which collector invocation is "independent of the
//! partition choice" so every policy sees the same trigger points.
//!
//! Workload events name objects by dense [`NodeId`]s; the replayer owns the
//! `NodeId → Oid` map, so the same trace (recorded or generated) can drive
//! any number of databases and policies.

use pgc_core::Collector;
use pgc_odb::{CollectionOutcome, Database};
use pgc_types::{Oid, Result, SlotId};
use pgc_workload::{Event, NodeId};

/// Drives one database + collector pair from an event stream.
pub struct Replayer {
    db: Database,
    collector: Collector,
    node_map: Vec<Oid>,
    events_applied: u64,
    collections: Vec<CollectionOutcome>,
}

impl Replayer {
    /// Creates a replayer over a fresh database and the given collector.
    pub fn new(db: Database, collector: Collector) -> Self {
        Self {
            db,
            collector,
            node_map: Vec::new(),
            events_applied: 0,
            collections: Vec::new(),
        }
    }

    /// The database being driven.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The collector driving collections.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Mutable access to the collector, e.g. to register shadow observers
    /// before the first event is applied.
    pub fn collector_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// Number of events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Outcomes of every collection performed so far.
    pub fn collections(&self) -> &[CollectionOutcome] {
        &self.collections
    }

    /// Resolves a workload node id to its database oid.
    pub fn oid_of(&self, node: NodeId) -> Option<Oid> {
        self.node_map.get(node.as_usize()).copied()
    }

    fn oid(&self, node: NodeId) -> Result<Oid> {
        self.oid_of(node)
            .ok_or(pgc_types::PgcError::UnknownNode(node.index()))
    }

    /// Applies one event (charging I/O, pumping the barrier bus, collecting
    /// when due).
    ///
    /// The pump is uniform: whatever the operation logged — allocations,
    /// growth, pointer or data writes — is drained through the collector
    /// after the operation completes, and the due-check covers the whole
    /// batch. Operations that log nothing (`AddSlot`, `Visit`) drain an
    /// empty log, and the sticky trigger can never be due there because any
    /// due state is consumed at the operation that caused it.
    pub fn apply(&mut self, event: &Event) -> Result<()> {
        match *event {
            Event::CreateRoot { node, size, slots } => {
                debug_assert_eq!(node.as_usize(), self.node_map.len(), "ids must be dense");
                let oid = self.db.create_root(size, slots as usize)?;
                self.node_map.push(oid);
            }
            Event::CreateChild {
                node,
                parent,
                parent_slot,
                size,
                slots,
            } => {
                debug_assert_eq!(node.as_usize(), self.node_map.len(), "ids must be dense");
                let parent_oid = self.oid(parent)?;
                let (oid, _info) =
                    self.db
                        .create_object(size, slots as usize, parent_oid, SlotId(parent_slot))?;
                self.node_map.push(oid);
            }
            Event::WritePointer { owner, slot, new } => {
                let owner_oid = self.oid(owner)?;
                let new_oid = new.map(|n| self.oid(n)).transpose()?;
                self.db.write_slot(owner_oid, SlotId(slot), new_oid)?;
            }
            Event::AddSlot { owner } => {
                let owner_oid = self.oid(owner)?;
                self.db.add_slot(owner_oid)?;
            }
            Event::Visit { node } => {
                self.db.visit(self.oid(node)?)?;
            }
            Event::DataWrite { node } => {
                let oid = self.oid(node)?;
                self.db.data_write(oid)?;
            }
        }
        if self.collector.sync(&mut self.db) {
            self.run_collection()?;
        }
        self.events_applied += 1;
        Ok(())
    }

    fn run_collection(&mut self) -> Result<()> {
        if let Some(outcome) = self.collector.maybe_collect(&mut self.db)? {
            self.collections.push(outcome);
        }
        Ok(())
    }

    /// Applies a whole event stream.
    pub fn apply_all<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) -> Result<()> {
        for e in events {
            self.apply(e)?;
        }
        Ok(())
    }

    /// Applies events `start..end` of a decoded block.
    ///
    /// The batched counterpart of [`Replayer::apply`]: the caller decodes a
    /// run of events into the block's flat columns
    /// ([`pgc_workload::TraceCursor::next_block`]) and this loop applies
    /// them without touching the byte stream — per-event semantics are
    /// exactly [`Replayer::apply`]'s, so block replay is bit-identical to
    /// per-event replay by construction. The sub-range lets a sampling loop
    /// stop mid-block at a measurement boundary.
    pub fn apply_block(
        &mut self,
        block: &pgc_workload::EventBlock,
        start: usize,
        end: usize,
    ) -> Result<()> {
        debug_assert!(start <= end && end <= block.len());
        for i in start..end {
            self.apply(&block.get(i))?;
        }
        Ok(())
    }

    /// Consumes the replayer, returning the database, collector, and
    /// collection log.
    pub fn into_parts(self) -> (Database, Collector, Vec<CollectionOutcome>) {
        (self.db, self.collector, self.collections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_core::PolicyKind;
    use pgc_types::{Bytes, DbConfig};
    use pgc_workload::{SyntheticWorkload, WorkloadParams};

    fn small_db() -> Database {
        Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(16)
                .with_gc_overwrite_threshold(50),
        )
        .unwrap()
    }

    fn replay_small(policy: PolicyKind, seed: u64) -> Replayer {
        let db = small_db();
        let collector = Collector::with_kind(policy, 50, seed, 16);
        let mut r = Replayer::new(db, collector);
        let events: Vec<Event> = SyntheticWorkload::new(WorkloadParams::small().with_seed(seed))
            .unwrap()
            .collect();
        r.apply_all(&events).unwrap();
        assert_eq!(r.events_applied(), events.len() as u64);
        r
    }

    #[test]
    fn full_small_run_updated_pointer() {
        let r = replay_small(PolicyKind::UpdatedPointer, 1);
        assert!(r.db().stats().objects_created > 1000);
        assert!(
            !r.collections().is_empty(),
            "the trigger must have fired at least once"
        );
        assert!(r.db().stats().reclaimed_bytes > Bytes::ZERO);
        r.db().check_invariants();
    }

    #[test]
    fn full_small_run_every_policy_keeps_invariants() {
        for policy in PolicyKind::ALL {
            let r = replay_small(policy, 2);
            r.db().check_invariants();
            if policy == PolicyKind::NoCollection {
                assert_eq!(r.db().stats().collections, 0);
            }
        }
    }

    #[test]
    fn collection_counts_match_collector_log() {
        let r = replay_small(PolicyKind::Random, 3);
        assert_eq!(r.db().stats().collections, r.collections().len() as u64);
    }

    #[test]
    fn trace_replay_gives_identical_results_to_live_generation() {
        let params = WorkloadParams::small().with_seed(4);
        let events: Vec<Event> = SyntheticWorkload::new(params).unwrap().collect();

        let run = |events: &[Event]| {
            let mut r = Replayer::new(
                small_db(),
                Collector::with_kind(PolicyKind::UpdatedPointer, 50, 4, 16),
            );
            r.apply_all(events).unwrap();
            (r.db().io_stats(), r.db().stats(), r.collections().len())
        };
        // Round-trip through the binary codec.
        let mut buf = Vec::new();
        pgc_workload::write_trace(&mut buf, &events).unwrap();
        let replayed: Vec<Event> = pgc_workload::read_trace(buf.as_slice()).unwrap();

        assert_eq!(run(&events), run(&replayed));
    }

    #[test]
    fn reachable_objects_survive_the_whole_run() {
        // Every node the mirror still considers attached must exist in the
        // database at the end of a collected run.
        let params = WorkloadParams::small().with_seed(5);
        let mut gen = SyntheticWorkload::new(params).unwrap();
        let mut events = Vec::new();
        for e in gen.by_ref() {
            events.push(e);
        }
        let mut r = Replayer::new(
            small_db(),
            Collector::with_kind(PolicyKind::MostGarbage, 50, 5, 16),
        );
        r.apply_all(&events).unwrap();
        let mirror = gen.mirror();
        for t in 0..mirror.tree_count() as u32 {
            for &n in mirror.members_of(t) {
                if mirror.is_attached(n) {
                    let oid = r.oid_of(n).unwrap();
                    assert!(
                        r.db().objects().contains(oid),
                        "attached node {n} was reclaimed"
                    );
                }
            }
        }
    }

    #[test]
    fn block_replay_is_bit_identical_to_per_event_replay() {
        let params = WorkloadParams::small().with_seed(6);
        let trace = pgc_workload::EncodedTrace::record(params).unwrap();

        let fresh = || {
            Replayer::new(
                small_db(),
                Collector::with_kind(PolicyKind::MostGarbage, 50, 6, 16),
            )
        };
        let mut per_event = fresh();
        for e in trace.cursor() {
            per_event.apply(&e).unwrap();
        }

        let mut batched = fresh();
        let mut cursor = trace.cursor();
        let mut block = pgc_workload::EventBlock::new();
        while cursor.next_block(&mut block).unwrap() > 0 {
            // Split each block at an arbitrary interior point to exercise
            // the sub-range path.
            let mid = block.len() / 3;
            batched.apply_block(&block, 0, mid).unwrap();
            batched.apply_block(&block, mid, block.len()).unwrap();
        }

        assert_eq!(batched.events_applied(), per_event.events_applied());
        assert_eq!(batched.collections(), per_event.collections());
        assert_eq!(batched.db().stats(), per_event.db().stats());
        assert_eq!(batched.db().io_stats(), per_event.db().io_stats());
        batched.db().check_invariants();
    }

    #[test]
    fn unknown_node_reference_errors() {
        let mut r = Replayer::new(
            small_db(),
            Collector::with_kind(PolicyKind::Random, 50, 1, 16),
        );
        let bad = Event::Visit { node: NodeId(99) };
        let err = r.apply(&bad).unwrap_err();
        // The error names the workload node, not a fabricated object id —
        // the two id spaces are unrelated.
        assert!(
            matches!(err, pgc_types::PgcError::UnknownNode(99)),
            "got {err:?}"
        );
    }
}
