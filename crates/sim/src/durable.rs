//! Recovery-by-replay and the run-manifest codec.
//!
//! A durable run's data directory is self-describing: `MANIFEST.pgc`
//! records the full [`RunConfig`] (floats by bit pattern) plus the
//! telemetry level, the `log-*.pgcl` segments hold every input event
//! write-ahead, and `snap-*.pgcs` files hold per-partition state at
//! collection safepoints. [`recover`] rebuilds the run from the directory
//! alone:
//!
//! 1. read and checksum-verify the manifest, rebuild the exact
//!    [`RunConfig`] (durability forced off — recovery does not re-persist);
//! 2. read the change log, dropping a torn tail (a truncated or corrupted
//!    final frame) at the checksum boundary;
//! 3. replay the surviving events through the ordinary [`crate::Shard`]
//!    pump — the same `Replayer` every run uses — pausing at each
//!    safepoint to cross-check the **newest valid** snapshot of every
//!    partition against the replayed database (corrupt snapshot files are
//!    skipped in favor of an older valid generation);
//! 4. finish the shard into a [`RunOutcome`].
//!
//! Because the simulator is deterministic and the log records inputs
//! ahead of application, the recovered outcome is *bit-identical* to an
//! uninterrupted run over the same event prefix: totals, victim sequence,
//! and telemetry (`tests/recovery.rs` pins this across policies and
//! seeds). Snapshots are not merely trusted — they are verified against
//! the replayed state, so a diverging snapshot file is detected rather
//! than silently believed.

use crate::run::{RunConfig, RunOutcome};
use crate::shard::Shard;
use pgc_core::{PolicyKind, Trigger};
use pgc_durable::{read_log, read_snapshot, scan_snapshots, Manifest, TornTail};
use pgc_telemetry::TelemetryLevel;
use pgc_types::{fast_hash_u64, Bytes, Parallelism, PgcError, PlacementPolicy, Result};
use pgc_workload::generator::GenStats;
use std::collections::BTreeMap;
use std::path::Path;

/// Builds the manifest describing `cfg` + `telemetry` (everything
/// [`recover`] needs to rebuild the run).
pub fn manifest_for(cfg: &RunConfig, telemetry: TelemetryLevel) -> Manifest {
    let mut m = Manifest::new();
    m.set("policy", cfg.policy.name());
    m.set("db.page_size", cfg.db.page_size);
    m.set("db.partition_pages", cfg.db.partition_pages);
    m.set("db.buffer_pages", cfg.db.buffer_pages);
    m.set("db.gc_overwrite_threshold", cfg.db.gc_overwrite_threshold);
    m.set("db.max_weight", cfg.db.max_weight);
    m.set(
        "db.placement",
        match cfg.db.placement {
            PlacementPolicy::NearParent => "near-parent",
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::Spread => "spread",
        },
    );
    match cfg.db.client_cache_pages {
        Some(pages) => m.set("db.client_cache_pages", pages),
        None => m.set("db.client_cache_pages", "none"),
    }
    let wl = &cfg.workload;
    m.set("wl.seed", wl.seed);
    m.set("wl.target_allocated", wl.target_allocated.get());
    m.set("wl.tree_nodes_min", wl.tree_nodes_min);
    m.set("wl.tree_nodes_max", wl.tree_nodes_max);
    m.set("wl.object_size_min", wl.object_size_min);
    m.set("wl.object_size_max", wl.object_size_max);
    m.set("wl.large_object_size", wl.large_object_size);
    m.set_f64(
        "wl.large_object_byte_fraction",
        wl.large_object_byte_fraction,
    );
    m.set_f64("wl.dense_edge_fraction", wl.dense_edge_fraction);
    m.set_f64("wl.p_no_traversal", wl.p_no_traversal);
    m.set_f64("wl.p_depth_first", wl.p_depth_first);
    m.set_f64("wl.p_skip_edge", wl.p_skip_edge);
    m.set_f64("wl.p_modify_on_visit", wl.p_modify_on_visit);
    m.set("wl.traversals_per_round", wl.traversals_per_round);
    m.set("wl.deletions_per_round", wl.deletions_per_round);
    match cfg.sample_every {
        Some(every) => m.set("sample_every", every),
        None => m.set("sample_every", "none"),
    }
    match cfg.trigger {
        None => m.set("trigger", "default"),
        Some(Trigger::OverwriteCount(n)) => m.set("trigger", format!("overwrites:{n}")),
        Some(Trigger::AllocationBytes(b)) => m.set("trigger", format!("alloc-bytes:{}", b.get())),
        Some(Trigger::PartitionGrowth) => m.set("trigger", "partition-growth"),
    }
    m.set("collect_batch", cfg.collect_batch);
    m.set(
        "parallelism",
        match cfg.parallelism {
            Parallelism::Serial => 1,
            Parallelism::Deterministic(n) => n.max(1) as usize,
        },
    );
    m.set(
        "telemetry",
        match telemetry {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Metrics => "metrics",
            TelemetryLevel::Full => "full",
        },
    );
    m
}

fn bad(msg: String) -> PgcError {
    PgcError::TraceFormat(msg)
}

/// Rebuilds the [`RunConfig`] + telemetry level a manifest describes.
/// Durability comes back `Off`: recovery replays, it does not re-persist.
pub fn config_from_manifest(m: &Manifest) -> Result<(RunConfig, TelemetryLevel)> {
    let policy: PolicyKind = m
        .require("policy")?
        .parse()
        .map_err(|e: String| bad(format!("manifest: {e}")))?;
    let mut cfg = RunConfig::paper(policy, m.require_u64("wl.seed")?);
    cfg.db.page_size = m.require_u64("db.page_size")? as usize;
    cfg.db.partition_pages = m.require_u64("db.partition_pages")?;
    cfg.db.buffer_pages = m.require_u64("db.buffer_pages")?;
    cfg.db.gc_overwrite_threshold = m.require_u64("db.gc_overwrite_threshold")?;
    cfg.db.max_weight = m.require_u64("db.max_weight")? as u8;
    cfg.db.placement = match m.require("db.placement")? {
        "near-parent" => PlacementPolicy::NearParent,
        "first-fit" => PlacementPolicy::FirstFit,
        "spread" => PlacementPolicy::Spread,
        other => return Err(bad(format!("manifest: unknown placement `{other}`"))),
    };
    cfg.db.client_cache_pages = match m.require("db.client_cache_pages")? {
        "none" => None,
        _ => Some(m.require_u64("db.client_cache_pages")?),
    };
    let wl = &mut cfg.workload;
    wl.target_allocated = Bytes(m.require_u64("wl.target_allocated")?);
    wl.tree_nodes_min = m.require_u64("wl.tree_nodes_min")?;
    wl.tree_nodes_max = m.require_u64("wl.tree_nodes_max")?;
    wl.object_size_min = m.require_u64("wl.object_size_min")?;
    wl.object_size_max = m.require_u64("wl.object_size_max")?;
    wl.large_object_size = m.require_u64("wl.large_object_size")?;
    wl.large_object_byte_fraction = m.require_f64("wl.large_object_byte_fraction")?;
    wl.dense_edge_fraction = m.require_f64("wl.dense_edge_fraction")?;
    wl.p_no_traversal = m.require_f64("wl.p_no_traversal")?;
    wl.p_depth_first = m.require_f64("wl.p_depth_first")?;
    wl.p_skip_edge = m.require_f64("wl.p_skip_edge")?;
    wl.p_modify_on_visit = m.require_f64("wl.p_modify_on_visit")?;
    wl.traversals_per_round = m.require_u64("wl.traversals_per_round")? as u32;
    wl.deletions_per_round = m.require_u64("wl.deletions_per_round")? as u32;
    cfg.sample_every = match m.require("sample_every")? {
        "none" => None,
        _ => Some(m.require_u64("sample_every")?),
    };
    cfg.trigger = match m.require("trigger")? {
        "default" => None,
        "partition-growth" => Some(Trigger::PartitionGrowth),
        spec => {
            let (kind, value) = spec
                .split_once(':')
                .ok_or_else(|| bad(format!("manifest: unknown trigger `{spec}`")))?;
            let value: u64 = value
                .parse()
                .map_err(|_| bad(format!("manifest: bad trigger value `{spec}`")))?;
            match kind {
                "overwrites" => Some(Trigger::OverwriteCount(value)),
                "alloc-bytes" => Some(Trigger::AllocationBytes(Bytes(value))),
                other => return Err(bad(format!("manifest: unknown trigger `{other}`"))),
            }
        }
    };
    cfg.collect_batch = m.require_u64("collect_batch")? as u32;
    cfg.parallelism = match m.require_u64("parallelism")? {
        0 | 1 => Parallelism::Serial,
        n => Parallelism::deterministic(n as u32),
    };
    let telemetry = match m.require("telemetry")? {
        "off" => TelemetryLevel::Off,
        "metrics" => TelemetryLevel::Metrics,
        "full" => TelemetryLevel::Full,
        other => return Err(bad(format!("manifest: unknown telemetry level `{other}`"))),
    };
    Ok((cfg, telemetry))
}

/// What [`recover`] brings back from a data directory.
#[derive(Debug)]
pub struct RecoveredRun {
    /// The replayed run, bit-identical to an uninterrupted run over the
    /// log's surviving event prefix.
    pub outcome: RunOutcome,
    /// The configuration rebuilt from the manifest.
    pub cfg: RunConfig,
    /// The telemetry level the original run recorded at (and the replay
    /// re-recorded at).
    pub telemetry_level: TelemetryLevel,
    /// Events replayed from the log.
    pub events_replayed: u64,
    /// The torn tail that was detected and dropped, if any.
    pub torn_tail: Option<TornTail>,
    /// Safepoint markers found in the log.
    pub safepoints: usize,
    /// Partition snapshots verified against the replayed state.
    pub snapshots_verified: usize,
    /// Snapshot files skipped as corrupt (an older valid generation, when
    /// present, stood in).
    pub snapshot_files_skipped: usize,
}

/// Recovers a durable run from its data directory: manifest → config,
/// newest valid snapshot per partition → verification checkpoints, change
/// log → replay through the ordinary shard pump. See the module docs for
/// the full protocol.
pub fn recover(dir: &Path) -> Result<RecoveredRun> {
    let manifest = Manifest::read_from(dir)?;
    let (cfg, telemetry_level) = config_from_manifest(&manifest)?;
    let log = read_log(dir)?;

    // Newest valid snapshot per partition: scan ascending by generation,
    // keep the last file that parses + checksums cleanly.
    let mut newest: BTreeMap<u32, pgc_durable::PartitionSnapshot> = BTreeMap::new();
    let mut snapshot_files_skipped = 0usize;
    for file in scan_snapshots(dir)? {
        match read_snapshot(&file.path) {
            Ok(snap) => {
                newest.insert(file.partition, snap);
            }
            Err(_) => snapshot_files_skipped += 1,
        }
    }
    // Group into checkpoints by the event position they were taken at,
    // dropping any from beyond a torn tail (their safepoint frame is gone).
    let mut checkpoints: BTreeMap<u64, Vec<pgc_durable::PartitionSnapshot>> = BTreeMap::new();
    for (_, snap) in newest {
        if snap.events_applied <= log.events.len() as u64 {
            checkpoints
                .entry(snap.events_applied)
                .or_default()
                .push(snap);
        }
    }

    let mut shard = Shard::new(&cfg)?;
    shard.enable_telemetry(telemetry_level);
    let mut at = 0usize;
    let mut snapshots_verified = 0usize;
    for (events_applied, snaps) in checkpoints {
        let upto = events_applied as usize;
        shard.step_batch(&log.events[at..upto])?;
        at = upto;
        for snap in snaps {
            snap.verify_against(shard.db()).map_err(|mismatch| {
                bad(format!(
                    "recovery: snapshot generation {} diverges from replay: {mismatch}",
                    snap.generation
                ))
            })?;
            snapshots_verified += 1;
        }
    }
    shard.step_batch(&log.events[at..])?;
    let events_replayed = shard.events_applied();
    let outcome = shard.finish(GenStats::default())?;
    Ok(RecoveredRun {
        outcome,
        cfg,
        telemetry_level,
        events_replayed,
        torn_tail: log.torn,
        safepoints: log.safepoints.len(),
        snapshots_verified,
        snapshot_files_skipped,
    })
}

/// A stable digest of a run's observable results — totals, victim
/// sequence, and telemetry counters — for crash-recovery smoke checks
/// (`recover_tool --expect`).
pub fn outcome_digest(out: &RunOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= fast_hash_u64(v.wrapping_add(0x9E37_79B9_7F4A_7C15));
        h = h.rotate_left(17).wrapping_mul(0x100_0000_01B3);
    };
    let t = &out.totals;
    for v in [
        t.app_ios,
        t.gc_ios,
        t.max_footprint.get(),
        t.partitions as u64,
        t.collections,
        t.reclaimed_bytes.get(),
        t.reclaimed_objects,
        t.final_live_bytes.get(),
        t.final_garbage_bytes.get(),
        t.final_nepotism_bytes.get(),
        t.events,
        t.app_net_ops,
        t.gc_net_ops,
    ] {
        mix(v);
    }
    for c in &out.collections {
        mix(c.victim.index() as u64);
        mix(c.target.index() as u64);
        mix(c.live_bytes.get());
        mix(c.garbage_bytes.get());
    }
    if let Some(snap) = &out.telemetry {
        mix(snap.counters.events);
        mix(snap.counters.overwrites);
        mix(snap.counters.collections);
        mix(snap.counters.reclaimed_bytes);
        mix(snap.records.len() as u64);
    }
    h
}
