//! The paper's experiment configurations (Sec. 6).
//!
//! Each function reproduces one experimental setup:
//!
//! * [`headline`] — Tables 2, 3, 4: 48 × 8 KB-page partitions, equal-size
//!   buffer, ~11 MB allocated (≈5 MB live), 10 seeds.
//! * [`time_series`] — Figures 4, 5: one seed, a database that grows to
//!   ~20 MB under `NoCollection`, sampled periodically.
//! * [`scaled`] — Figure 6: maximum allocation swept 4→40 MB with the
//!   partition size scaled 24→100 pages ("partition size was scaled up
//!   with the size of the database").
//! * [`connectivity`] — Table 5: dense-edge fraction swept so database
//!   connectivity covers 1.005–1.167 pointers per object.

use crate::run::RunConfig;
use pgc_core::PolicyKind;
use pgc_types::{Bytes, DbConfig};
use pgc_workload::WorkloadParams;

/// The seed set for a paper-style experiment ("10 sets of simulation runs
/// ... with a different random seed").
pub fn seeds(n: u64) -> Vec<u64> {
    (1..=n).collect()
}

/// Tables 2–4 configuration.
pub fn headline(policy: PolicyKind, seed: u64) -> RunConfig {
    RunConfig::paper(policy, seed)
}

/// Figures 4–5 configuration: a larger run (~20 MB allocated) with
/// time-series sampling. The paper's figure is "a simulation of a database
/// whose storage grew to about 20 megabytes with no garbage collection".
pub fn time_series(policy: PolicyKind, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::paper(policy, seed);
    cfg.workload = cfg
        .workload
        .with_target_allocated(Bytes::from_mib(20))
        .with_seed(seed);
    cfg.db = cfg.db.with_partition_pages(64);
    cfg.sample_every = Some(25_000);
    cfg
}

/// Figure 6 partition scaling: 24 pages at 4 MB allocated up to 100 pages
/// at 40 MB, linear in between (clamped outside the range).
pub fn scaled_partition_pages(alloc_mib: u64) -> u64 {
    const LO_MIB: f64 = 4.0;
    const HI_MIB: f64 = 40.0;
    const LO_PAGES: f64 = 24.0;
    const HI_PAGES: f64 = 100.0;
    let t = ((alloc_mib as f64 - LO_MIB) / (HI_MIB - LO_MIB)).clamp(0.0, 1.0);
    (LO_PAGES + t * (HI_PAGES - LO_PAGES)).round() as u64
}

/// Figure 6 configuration: `alloc_mib` megabytes of maximum allocation with
/// the partition (and buffer) size scaled to match.
pub fn scaled(policy: PolicyKind, seed: u64, alloc_mib: u64) -> RunConfig {
    RunConfig {
        policy,
        db: DbConfig::default().with_partition_pages(scaled_partition_pages(alloc_mib)),
        workload: WorkloadParams::default()
            .with_seed(seed)
            .with_target_allocated(Bytes::from_mib(alloc_mib)),
        sample_every: None,
        trigger: None,
        collect_batch: 1,
        parallelism: pgc_types::Parallelism::Serial,
        durability: pgc_durable::DurabilityConfig::off(),
    }
}

/// Table 5's connectivity points: `(connectivity label, dense-edge
/// fraction)` pairs. Connectivity ≈ 1 + dense fraction (each n-node tree
/// already carries n−1 tree edges).
pub const TABLE5_CONNECTIVITY: [(f64, f64); 4] = [
    (1.167, 0.167),
    (1.083, 0.083),
    (1.040, 0.040),
    (1.005, 0.005),
];

/// Table 5 configuration: headline geometry with the dense-edge fraction
/// set for the requested connectivity point.
pub fn connectivity(policy: PolicyKind, seed: u64, dense_fraction: f64) -> RunConfig {
    let mut cfg = RunConfig::paper(policy, seed);
    cfg.workload = cfg.workload.with_dense_edge_fraction(dense_fraction);
    cfg
}

/// Figure 6's sweep points (the paper's 4–40 MB range).
pub const FIG6_SIZES_MIB: [u64; 5] = [4, 10, 20, 30, 40];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper_geometry() {
        let cfg = headline(PolicyKind::UpdatedPointer, 1);
        assert_eq!(cfg.db.partition_pages, 48);
        assert_eq!(cfg.db.buffer_pages, 48);
        assert_eq!(cfg.db.page_size, 8192);
        assert!(cfg.db.gc_overwrite_threshold >= 150 && cfg.db.gc_overwrite_threshold <= 300);
    }

    #[test]
    fn partition_scaling_hits_paper_endpoints() {
        assert_eq!(scaled_partition_pages(4), 24);
        assert_eq!(scaled_partition_pages(40), 100);
        assert_eq!(scaled_partition_pages(2), 24, "clamped below");
        assert_eq!(scaled_partition_pages(80), 100, "clamped above");
        let mid = scaled_partition_pages(22);
        assert!((24..=100).contains(&mid));
    }

    #[test]
    fn scaled_config_sets_both_axes() {
        let cfg = scaled(PolicyKind::Random, 3, 40);
        assert_eq!(cfg.db.partition_pages, 100);
        assert_eq!(cfg.workload.target_allocated, Bytes::from_mib(40));
        assert_eq!(cfg.workload.seed, 3);
    }

    #[test]
    fn connectivity_points_match_table5() {
        for (c, dense) in TABLE5_CONNECTIVITY {
            assert!((c - (1.0 + dense)).abs() < 1e-9);
            let cfg = connectivity(PolicyKind::UpdatedPointer, 1, dense);
            let expected = cfg.workload.expected_connectivity();
            assert!((expected - c).abs() < 0.01, "expected {expected} vs {c}");
        }
    }

    #[test]
    fn seeds_are_one_based_and_dense() {
        assert_eq!(seeds(3), vec![1, 2, 3]);
        assert_eq!(seeds(10).len(), 10);
    }

    #[test]
    fn time_series_samples() {
        let cfg = time_series(PolicyKind::MostGarbage, 7);
        assert!(cfg.sample_every.is_some());
        assert_eq!(cfg.workload.target_allocated, Bytes::from_mib(20));
    }
}
