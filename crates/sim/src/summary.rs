//! Mean / standard deviation over repeated runs.
//!
//! The paper reports "means (and standard deviations where appropriate) of
//! 10 sets of simulation runs, each set with the same configuration
//! parameters but with a different random seed". [`Summary`] is that
//! aggregation (sample standard deviation, n−1 denominator).

use std::fmt;

/// Mean and sample standard deviation of a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1); 0 for fewer than two samples.
    pub std_dev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a slice of samples. An empty slice yields all zeros.
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Self { mean, std_dev, n }
    }

    /// Summarizes unsigned integer samples.
    pub fn of_u64(samples: impl IntoIterator<Item = u64>) -> Self {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Self::of(&v)
    }

    /// This summary's mean divided by `baseline`'s mean (the paper's
    /// "Relative" columns, MostGarbage = 1). Returns 0 for a zero baseline.
    pub fn relative_to(&self, baseline: &Summary) -> f64 {
        if baseline.mean == 0.0 {
            0.0
        } else {
            self.mean / baseline.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.n, 0);
        let single = Summary::of(&[42.0]);
        assert_eq!(single.mean, 42.0);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn of_u64_and_relative() {
        let a = Summary::of_u64([10, 20, 30]);
        let b = Summary::of_u64([10, 10, 10]);
        assert!((a.mean - 20.0).abs() < 1e-12);
        assert!((a.relative_to(&b) - 2.0).abs() < 1e-12);
        assert_eq!(a.relative_to(&Summary::of(&[])), 0.0);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.to_string(), "2.0 ± 1.4");
    }
}
