//! Terminal rendering of the time-varying figures.
//!
//! The paper's Figures 4 and 5 are line charts of one metric against
//! application events, one curve per policy. [`render_chart`] draws the
//! same picture as ASCII art so a terminal reproduction can be eyeballed
//! against the originals without leaving the shell (the CSV output remains
//! the precise artifact).

use crate::metrics::{SamplePoint, TimeSeries};
use std::fmt::Write as _;

/// Which metric of a [`SamplePoint`] to plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartMetric {
    /// Unreclaimed garbage (Figure 4).
    GarbageKb,
    /// Database size: live + unreclaimed garbage (Figure 5).
    ResidentKb,
    /// Storage footprint.
    FootprintKb,
}

impl ChartMetric {
    fn value(self, p: &SamplePoint) -> f64 {
        match self {
            ChartMetric::GarbageKb => p.garbage_bytes.as_kib_f64(),
            ChartMetric::ResidentKb => p.resident_bytes.as_kib_f64(),
            ChartMetric::FootprintKb => p.footprint.as_kib_f64(),
        }
    }

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            ChartMetric::GarbageKb => "unreclaimed garbage (KB)",
            ChartMetric::ResidentKb => "database size (KB)",
            ChartMetric::FootprintKb => "storage footprint (KB)",
        }
    }
}

/// Renders labelled series as an ASCII line chart.
///
/// Each series is drawn with a unique symbol derived from its label (the
/// first character of the label not already claimed by an earlier series,
/// falling back to digits); where curves overlap, the later series wins
/// the cell. `width`/`height` are the plot area in characters (axes and
/// legend extra).
pub fn render_chart(
    series: &[(&str, &TimeSeries)],
    metric: ChartMetric,
    width: usize,
    height: usize,
) -> String {
    let width = width.clamp(16, 240);
    let height = height.clamp(4, 64);

    let max_events = series
        .iter()
        .flat_map(|(_, s)| s.points().last())
        .map(|p| p.events)
        .max()
        .unwrap_or(0);
    let max_value = series
        .iter()
        .flat_map(|(_, s)| s.points())
        .map(|p| metric.value(p))
        .fold(0.0f64, f64::max);
    if max_events == 0 || max_value <= 0.0 {
        return format!("(no data to chart for {})\n", metric.label());
    }

    let symbols = assign_symbols(series);
    let mut grid = vec![vec![' '; width]; height];
    for ((_, s), &symbol) in series.iter().zip(&symbols) {
        let mut prev_cell: Option<(usize, usize)> = None;
        for p in s.points() {
            let x = ((p.events as f64 / max_events as f64) * (width - 1) as f64).round() as usize;
            let v = metric.value(p);
            let y = ((v / max_value) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            let col = x.min(width - 1);
            grid[row][col] = symbol;
            // Fill vertical gaps between consecutive samples so curves
            // read as lines rather than dots.
            if let Some((prow, pcol)) = prev_cell {
                if pcol != col {
                    let (lo, hi) = if prow < row { (prow, row) } else { (row, prow) };
                    for r in grid.iter_mut().take(hi).skip(lo + 1) {
                        if r[col] == ' ' {
                            r[col] = symbol;
                        }
                    }
                }
            }
            prev_cell = Some((row, col));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{} (max {:.0})", metric.label(), max_value);
    for (i, row) in grid.iter().enumerate() {
        let edge = if i == 0 {
            format!("{max_value:>8.0} |")
        } else {
            "         |".into()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{edge}{}", line.trim_end());
    }
    let _ = writeln!(out, "       0 +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "          0 {: >w$}",
        format!("{max_events} events"),
        w = width.saturating_sub(2)
    );
    let legend: Vec<String> = series
        .iter()
        .zip(&symbols)
        .map(|((l, _), &sym)| format!("{sym} = {l}"))
        .collect();
    let _ = writeln!(out, "          {}", legend.join("   "));
    out
}

/// Picks a distinct plot symbol per series: the first character of the
/// label that no earlier series claimed, else the first free digit.
fn assign_symbols(series: &[(&str, &TimeSeries)]) -> Vec<char> {
    let mut taken: Vec<char> = Vec::new();
    for (label, _) in series {
        let mut chosen = label
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .find(|c| !taken.contains(c));
        if chosen.is_none() {
            chosen = ('0'..='9').find(|c| !taken.contains(c));
        }
        taken.push(chosen.unwrap_or('?'));
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::Bytes;

    fn series(values: &[(u64, u64)]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(events, kb) in values {
            ts.push(SamplePoint {
                events,
                resident_bytes: Bytes::from_kib(kb),
                garbage_bytes: Bytes::from_kib(kb / 2),
                footprint: Bytes::from_kib(kb * 2),
                collections: 0,
            });
        }
        ts
    }

    #[test]
    fn renders_axes_legend_and_symbols() {
        let a = series(&[(0, 0), (500, 50), (1000, 100)]);
        let b = series(&[(0, 0), (500, 20), (1000, 30)]);
        let chart = render_chart(
            &[("Alpha", &a), ("Beta", &b)],
            ChartMetric::ResidentKb,
            40,
            10,
        );
        assert!(chart.contains("database size"));
        assert!(chart.contains("A = Alpha"));
        assert!(chart.contains("B = Beta"));
        assert!(chart.contains('A'));
        assert!(chart.contains('B'));
        assert!(chart.contains("1000 events"));
    }

    #[test]
    fn empty_series_degrade_gracefully() {
        let empty = TimeSeries::new();
        let chart = render_chart(&[("X", &empty)], ChartMetric::GarbageKb, 40, 10);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn higher_curve_renders_above_lower() {
        let high = series(&[(0, 100), (1000, 100)]);
        let low = series(&[(0, 10), (1000, 10)]);
        let chart = render_chart(
            &[("High", &high), ("Low", &low)],
            ChartMetric::ResidentKb,
            40,
            12,
        );
        let h_row = chart.lines().position(|l| l.contains('H')).unwrap();
        let l_row = chart.lines().position(|l| l.contains('L')).unwrap();
        assert!(h_row < l_row, "high curve must be drawn above the low one");
    }

    #[test]
    fn colliding_labels_get_distinct_symbols() {
        let a = series(&[(0, 1), (10, 5)]);
        let b = series(&[(0, 2), (10, 6)]);
        let syms = assign_symbols(&[("MutatedPartition", &a), ("MostGarbage", &b)]);
        assert_eq!(syms[0], 'M');
        assert_ne!(syms[0], syms[1]);
        assert_eq!(syms[1], 'o', "falls to the next unclaimed letter");
        let chart = render_chart(
            &[("MutatedPartition", &a), ("MostGarbage", &b)],
            ChartMetric::ResidentKb,
            40,
            8,
        );
        assert!(chart.contains("M = MutatedPartition"));
        assert!(chart.contains("o = MostGarbage"));
    }

    #[test]
    fn all_metrics_have_labels() {
        for m in [
            ChartMetric::GarbageKb,
            ChartMetric::ResidentKb,
            ChartMetric::FootprintKb,
        ] {
            assert!(!m.label().is_empty());
        }
    }

    #[test]
    fn dimensions_are_clamped() {
        let a = series(&[(0, 1), (10, 5)]);
        // Degenerate sizes must not panic.
        let chart = render_chart(&[("A", &a)], ChartMetric::GarbageKb, 1, 1);
        assert!(chart.contains('|'));
    }
}
