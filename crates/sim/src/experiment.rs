//! Multi-run experiments: policy comparisons over seed sets, on the
//! shared-trace engine.
//!
//! The paper's tables aggregate ten same-configuration runs per policy,
//! differing only in random seed. [`compare_policies`] runs the full
//! (policy × seed) grid — in parallel across OS threads, since runs are
//! independent — and reduces each policy's runs to [`Summary`] statistics
//! per metric.
//!
//! The grid is trace-driven the way the paper's evaluation is: the
//! scheduler groups jobs by workload parameters ([`WorkloadParams::digest`]),
//! records each distinct trace exactly once — in parallel across seeds —
//! into a [`TraceCache`], then fans the shared [`pgc_workload::EncodedTrace`]
//! out to every policy worker, which replays it with
//! [`Simulation::run_encoded`]. An 11-policy sweep therefore pays the
//! synthetic generator once per seed instead of once per job, and every
//! policy consumes byte-identical input. Results are collected into
//! pre-sized per-job slots (no shared lock on the completion path, no
//! post-sort), and remain independent of the worker-thread count — each
//! run is a pure function of its configuration, which the determinism
//! tests below pin down.

use crate::run::{RunConfig, RunOutcome, Simulation};
use crate::summary::Summary;
use pgc_core::PolicyKind;
use pgc_types::Result;
use pgc_workload::{TraceCache, WorkloadParams};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Aggregated metrics for one policy across seeds — one table row.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// The policy.
    pub policy: PolicyKind,
    /// Application page I/Os.
    pub app_ios: Summary,
    /// Collector page I/Os.
    pub gc_ios: Summary,
    /// Total page I/Os.
    pub total_ios: Summary,
    /// Maximum storage footprint in KB.
    pub max_storage_kb: Summary,
    /// Partition count.
    pub partitions: Summary,
    /// Garbage reclaimed in KB.
    pub reclaimed_kb: Summary,
    /// Total garbage generated in KB (reclaimed + unreclaimed at end).
    pub actual_garbage_kb: Summary,
    /// Percent of generated garbage reclaimed.
    pub fraction_pct: Summary,
    /// Collector efficiency in KB reclaimed per collector I/O.
    pub efficiency_kb_per_io: Summary,
    /// Final distributed (nepotism-retained) garbage in KB.
    pub nepotism_kb: Summary,
    /// Collections performed.
    pub collections: Summary,
}

impl PolicyRow {
    fn from_runs(policy: PolicyKind, runs: &[RunOutcome]) -> Self {
        let pick =
            |f: &dyn Fn(&RunOutcome) -> f64| Summary::of(&runs.iter().map(f).collect::<Vec<f64>>());
        Self {
            policy,
            app_ios: pick(&|r| r.totals.app_ios as f64),
            gc_ios: pick(&|r| r.totals.gc_ios as f64),
            total_ios: pick(&|r| r.totals.total_ios() as f64),
            max_storage_kb: pick(&|r| r.totals.max_footprint.as_kib_f64()),
            partitions: pick(&|r| r.totals.partitions as f64),
            reclaimed_kb: pick(&|r| r.totals.reclaimed_bytes.as_kib_f64()),
            actual_garbage_kb: pick(&|r| r.totals.actual_garbage_bytes().as_kib_f64()),
            fraction_pct: pick(&|r| r.totals.fraction_reclaimed_pct()),
            efficiency_kb_per_io: pick(&|r| r.totals.efficiency_kb_per_io()),
            nepotism_kb: pick(&|r| r.totals.final_nepotism_bytes.as_kib_f64()),
            collections: pick(&|r| r.totals.collections as f64),
        }
    }
}

/// A full policy comparison: one row per policy, paper row order preserved.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rows, in the order the policies were given.
    pub rows: Vec<PolicyRow>,
}

impl Comparison {
    /// The row for one policy, if present.
    pub fn row(&self, policy: PolicyKind) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// The `MostGarbage` row (the paper's "Relative = 1" baseline).
    pub fn baseline(&self) -> Option<&PolicyRow> {
        self.row(PolicyKind::MostGarbage)
    }
}

/// Runs every `(policy, seed)` combination and aggregates per policy.
///
/// `make_config` builds the run configuration for each combination —
/// usually [`RunConfig::paper`] or one of the [`crate::paper`] factories.
pub fn compare_policies(
    policies: &[PolicyKind],
    seeds: &[u64],
    make_config: impl Fn(PolicyKind, u64) -> RunConfig + Sync,
) -> Result<Comparison> {
    compare_policies_with_threads(policies, seeds, default_threads(), make_config)
}

/// [`compare_policies`] with an explicit worker-thread count.
///
/// Results are independent of `threads` — each run is a pure function of
/// its configuration — which the determinism test below pins down.
pub fn compare_policies_with_threads(
    policies: &[PolicyKind],
    seeds: &[u64],
    threads: usize,
    make_config: impl Fn(PolicyKind, u64) -> RunConfig + Sync,
) -> Result<Comparison> {
    compare_policies_cached(policies, seeds, threads, &TraceCache::new(), make_config)
}

/// [`compare_policies_with_threads`] replaying from (and recording into) an
/// explicit [`TraceCache`], so several comparisons over overlapping
/// parameter sets — e.g. the tables and figures of one full evaluation —
/// share recorded traces across calls.
pub fn compare_policies_cached(
    policies: &[PolicyKind],
    seeds: &[u64],
    threads: usize,
    cache: &TraceCache,
    make_config: impl Fn(PolicyKind, u64) -> RunConfig + Sync,
) -> Result<Comparison> {
    // Seed-major job order: all policies replaying one seed's trace are
    // adjacent in the schedule, so the shared buffer stays hot. Aggregation
    // below is policy-major regardless of job order, and within one policy
    // outcomes land in seed order either way, so the reduced rows are
    // bit-identical to any other job ordering.
    let mut jobs: Vec<(usize, RunConfig)> = Vec::new();
    for &seed in seeds {
        for (pi, &policy) in policies.iter().enumerate() {
            jobs.push((pi, make_config(policy, seed)));
        }
    }
    let results = run_jobs_cached(jobs, threads, cache)?;

    let mut per_policy: Vec<Vec<RunOutcome>> = (0..policies.len()).map(|_| Vec::new()).collect();
    for (pi, outcome) in results {
        per_policy[pi].push(outcome);
    }
    let rows = policies
        .iter()
        .zip(&per_policy)
        .map(|(&p, runs)| PolicyRow::from_runs(p, runs))
        .collect();
    Ok(Comparison { rows })
}

/// The default worker-thread count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a set of independent configurations in parallel, preserving labels.
pub fn run_jobs<L: Send + Sync>(jobs: Vec<(L, RunConfig)>) -> Result<Vec<(L, RunOutcome)>> {
    run_jobs_on(jobs, default_threads())
}

/// [`run_jobs`] with an explicit worker-thread count (1 = sequential).
pub fn run_jobs_on<L: Send + Sync>(
    jobs: Vec<(L, RunConfig)>,
    threads: usize,
) -> Result<Vec<(L, RunOutcome)>> {
    run_jobs_cached(jobs, threads, &TraceCache::new())
}

/// The shared-trace scheduler: deduplicates the jobs' workload parameters,
/// records each distinct trace once (in parallel), then replays every job
/// from the shared encoded buffers.
///
/// Results land in pre-sized per-job [`OnceLock`] slots — label order is
/// preserved by construction, with no completion-path lock and no post-sort.
pub fn run_jobs_cached<L: Send + Sync>(
    jobs: Vec<(L, RunConfig)>,
    threads: usize,
    cache: &TraceCache,
) -> Result<Vec<(L, RunOutcome)>> {
    let threads = threads.min(jobs.len().max(1));
    if threads <= 1 {
        return jobs
            .into_iter()
            .map(|(label, cfg)| {
                let trace = cache.get_or_record(&cfg.workload)?;
                Simulation::run_encoded(&cfg, &trace).map(|o| (label, o))
            })
            .collect();
    }

    // Phase 1 — group by workload parameters and record each distinct
    // trace exactly once, in parallel across the groups (the per-seed
    // generator runs dominate this phase; policies share everything).
    let mut unique: Vec<&WorkloadParams> = Vec::new();
    for (_, cfg) in &jobs {
        if !unique.contains(&&cfg.workload) {
            unique.push(&cfg.workload);
        }
    }
    let next_unique = AtomicUsize::new(0);
    let recorded: Vec<OnceLock<Result<()>>> = (0..unique.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(unique.len()) {
            scope.spawn(|| loop {
                let i = next_unique.fetch_add(1, Ordering::Relaxed);
                let Some(params) = unique.get(i) else { break };
                let outcome = cache.get_or_record(params).map(drop);
                assert!(recorded[i].set(outcome).is_ok(), "slot claimed once");
            });
        }
    });
    for slot in recorded {
        slot.into_inner().expect("every slot recorded")?;
    }

    // Phase 2 — fan the shared traces out to the policy workers. Each
    // worker claims job indices from an atomic counter and writes its
    // outcome into that job's own slot.
    let next_job = AtomicUsize::new(0);
    let job_slots: Vec<Mutex<Option<(L, RunConfig)>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<OnceLock<Result<(L, RunOutcome)>>> =
        (0..job_slots.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = job_slots.get(i) else { break };
                let (label, cfg) = slot
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let outcome = cache
                    .get_or_record(&cfg.workload)
                    .and_then(|trace| Simulation::run_encoded(&cfg, &trace))
                    .map(|o| (label, o));
                assert!(results[i].set(outcome).is_ok(), "slot claimed once");
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(policy: PolicyKind, seed: u64) -> RunConfig {
        RunConfig::small().with_policy(policy).with_seed(seed)
    }

    #[test]
    fn comparison_has_one_row_per_policy_in_order() {
        let policies = [
            PolicyKind::NoCollection,
            PolicyKind::UpdatedPointer,
            PolicyKind::MostGarbage,
        ];
        let cmp = compare_policies(&policies, &[1, 2], small_cfg).unwrap();
        assert_eq!(cmp.rows.len(), 3);
        assert_eq!(cmp.rows[0].policy, PolicyKind::NoCollection);
        assert_eq!(cmp.rows[2].policy, PolicyKind::MostGarbage);
        assert_eq!(cmp.rows[1].app_ios.n, 2);
        assert!(cmp.baseline().is_some());
        assert!(cmp.row(PolicyKind::Random).is_none());
    }

    #[test]
    fn no_collection_row_has_zero_gc_cost() {
        let cmp = compare_policies(&[PolicyKind::NoCollection], &[1], small_cfg).unwrap();
        let row = &cmp.rows[0];
        assert_eq!(row.gc_ios.mean, 0.0);
        assert_eq!(row.reclaimed_kb.mean, 0.0);
        assert_eq!(row.fraction_pct.mean, 0.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // run_jobs with one job falls back to sequential; many jobs use
        // threads. Both must produce the same totals for the same configs.
        let cfg = small_cfg(PolicyKind::Random, 9);
        let seq = run_jobs(vec![("only", cfg.clone())]).unwrap();
        let par = run_jobs(vec![
            ("a", cfg.clone()),
            ("b", cfg.clone()),
            ("c", cfg.clone()),
            ("d", cfg.clone()),
        ])
        .unwrap();
        for (_, out) in &par {
            assert_eq!(out.totals, seq[0].1.totals);
        }
        // Labels preserved in order.
        let labels: Vec<&str> = par.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn compare_policies_is_thread_count_invariant() {
        // The full grid on 1 worker thread and on several must aggregate to
        // bit-identical rows: scheduling order cannot leak into results.
        let policies = [
            PolicyKind::UpdatedPointer,
            PolicyKind::Random,
            PolicyKind::MostGarbage,
        ];
        let seeds = [11, 12, 13];
        let sequential = compare_policies_with_threads(&policies, &seeds, 1, small_cfg).unwrap();
        let parallel = compare_policies_with_threads(&policies, &seeds, 4, small_cfg).unwrap();
        assert_eq!(sequential.rows, parallel.rows);
    }

    #[test]
    fn shared_trace_grid_matches_independent_generation() {
        // The rewired scheduler must be observationally identical to
        // running each (policy, seed) job with its own live generator.
        let policies = [PolicyKind::UpdatedPointer, PolicyKind::MostGarbage];
        let seeds = [5, 6];
        let cmp = compare_policies(&policies, &seeds, small_cfg).unwrap();
        for &policy in &policies {
            let solo: Vec<RunOutcome> = seeds
                .iter()
                .map(|&seed| Simulation::run(&small_cfg(policy, seed)).unwrap())
                .collect();
            let expected = PolicyRow::from_runs(policy, &solo);
            assert_eq!(cmp.row(policy), Some(&expected), "policy {policy:?}");
        }
    }

    #[test]
    fn trace_cache_is_shared_across_calls_and_records_once_per_seed() {
        let cache = pgc_workload::TraceCache::new();
        let policies = [PolicyKind::UpdatedPointer, PolicyKind::Random];
        let seeds = [21, 22, 23];
        let first = compare_policies_cached(&policies, &seeds, 4, &cache, small_cfg).unwrap();
        assert_eq!(cache.len(), seeds.len(), "one trace per seed, not per job");
        // A second comparison over the same seeds replays from the cache
        // (no new entries) and reduces to bit-identical rows.
        let second = compare_policies_cached(&policies, &seeds, 2, &cache, small_cfg).unwrap();
        assert_eq!(cache.len(), seeds.len());
        assert_eq!(first.rows, second.rows);
    }

    #[test]
    fn run_jobs_propagates_recording_errors() {
        let mut bad = small_cfg(PolicyKind::Random, 1);
        bad.workload.tree_nodes_min = 0; // fails validation at record time
        let jobs = vec![("ok", small_cfg(PolicyKind::Random, 1)), ("bad", bad)];
        assert!(run_jobs_on(jobs, 2).is_err());
    }
}
