//! Multi-run experiments: policy comparisons over seed sets, on the
//! shared-trace engine.
//!
//! The paper's tables aggregate ten same-configuration runs per policy,
//! differing only in random seed. [`Experiment`] runs the full
//! (policy × seed) grid — in parallel across OS threads, since runs are
//! independent — and reduces each policy's runs to [`Summary`] statistics
//! per metric:
//!
//! ```no_run
//! use pgc_sim::{Experiment, RunConfig};
//! use pgc_core::PolicyKind;
//!
//! let cmp = Experiment::new()
//!     .with_threads(4)
//!     .compare(&PolicyKind::PAPER, &[1, 2, 3], RunConfig::paper)
//!     .unwrap();
//! ```
//!
//! The grid is trace-driven the way the paper's evaluation is: the
//! scheduler groups jobs by workload parameters ([`WorkloadParams::digest`]),
//! records each distinct trace exactly once — in parallel across seeds —
//! into a [`TraceCache`], then fans the shared [`pgc_workload::EncodedTrace`]
//! out to every policy worker, which replays it through
//! [`Simulation::builder`]. An 11-policy sweep therefore pays the
//! synthetic generator once per seed instead of once per job, and every
//! policy consumes byte-identical input. Results are collected into
//! pre-sized per-job slots (no shared lock on the completion path, no
//! post-sort), and remain independent of the worker-thread count — each
//! run is a pure function of its configuration, which the determinism
//! tests below pin down.
//!
//! [`Experiment::with_telemetry`] taps every run: each job carries its
//! [`TelemetrySnapshot`] back on the [`Comparison`] (per-run in
//! [`Comparison::telemetry`], merged per policy on
//! [`PolicyRow::telemetry`]) without perturbing any simulation result.
//!
//! The pre-builder free functions (`compare_policies`, `run_jobs`, and
//! their variants) are gone as of the durability PR: [`Experiment`] is
//! the one multi-run entry point; only [`default_threads`] remains
//! free-standing.

use crate::run::{RunConfig, RunOutcome, Simulation};
use crate::summary::Summary;
use pgc_core::PolicyKind;
use pgc_telemetry::{TelemetryLevel, TelemetrySnapshot};
use pgc_types::Result;
use pgc_workload::{TraceCache, WorkloadParams};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Aggregated metrics for one policy across seeds — one table row.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// The policy.
    pub policy: PolicyKind,
    /// Application page I/Os.
    pub app_ios: Summary,
    /// Collector page I/Os.
    pub gc_ios: Summary,
    /// Total page I/Os.
    pub total_ios: Summary,
    /// Maximum storage footprint in KB.
    pub max_storage_kb: Summary,
    /// Partition count.
    pub partitions: Summary,
    /// Garbage reclaimed in KB.
    pub reclaimed_kb: Summary,
    /// Total garbage generated in KB (reclaimed + unreclaimed at end).
    pub actual_garbage_kb: Summary,
    /// Percent of generated garbage reclaimed.
    pub fraction_pct: Summary,
    /// Collector efficiency in KB reclaimed per collector I/O.
    pub efficiency_kb_per_io: Summary,
    /// Final distributed (nepotism-retained) garbage in KB.
    pub nepotism_kb: Summary,
    /// Collections performed.
    pub collections: Summary,
    /// This policy's telemetry merged across its seeds (`None` unless the
    /// experiment ran with [`Experiment::with_telemetry`] above `Off`;
    /// per-activation records live on [`Comparison::telemetry`] — merging
    /// drops them).
    pub telemetry: Option<TelemetrySnapshot>,
}

impl PolicyRow {
    fn from_runs(policy: PolicyKind, runs: &[RunOutcome]) -> Self {
        let pick =
            |f: &dyn Fn(&RunOutcome) -> f64| Summary::of(&runs.iter().map(f).collect::<Vec<f64>>());
        let mut telemetry: Option<TelemetrySnapshot> = None;
        for r in runs {
            if let Some(snap) = &r.telemetry {
                match telemetry.as_mut() {
                    Some(acc) => acc.merge(snap),
                    None => telemetry = Some(snap.clone()),
                }
            }
        }
        Self {
            policy,
            app_ios: pick(&|r| r.totals.app_ios as f64),
            gc_ios: pick(&|r| r.totals.gc_ios as f64),
            total_ios: pick(&|r| r.totals.total_ios() as f64),
            max_storage_kb: pick(&|r| r.totals.max_footprint.as_kib_f64()),
            partitions: pick(&|r| r.totals.partitions as f64),
            reclaimed_kb: pick(&|r| r.totals.reclaimed_bytes.as_kib_f64()),
            actual_garbage_kb: pick(&|r| r.totals.actual_garbage_bytes().as_kib_f64()),
            fraction_pct: pick(&|r| r.totals.fraction_reclaimed_pct()),
            efficiency_kb_per_io: pick(&|r| r.totals.efficiency_kb_per_io()),
            nepotism_kb: pick(&|r| r.totals.final_nepotism_bytes.as_kib_f64()),
            collections: pick(&|r| r.totals.collections as f64),
            telemetry,
        }
    }
}

/// One run's telemetry snapshot, labelled with the grid cell it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// The policy that ran.
    pub policy: PolicyKind,
    /// The workload seed.
    pub seed: u64,
    /// What the run's telemetry tap captured.
    pub snapshot: TelemetrySnapshot,
}

/// A full policy comparison: one row per policy, paper row order preserved.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rows, in the order the policies were given.
    pub rows: Vec<PolicyRow>,
    /// Per-run telemetry snapshots in job (seed-major) order — empty
    /// unless the experiment ran with [`Experiment::with_telemetry`] above
    /// `Off`. This is the source for JSONL export; the per-policy rows
    /// carry the merged aggregates.
    pub telemetry: Vec<RunTelemetry>,
}

impl Comparison {
    /// The row for one policy, if present.
    pub fn row(&self, policy: PolicyKind) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// The `MostGarbage` row (the paper's "Relative = 1" baseline).
    pub fn baseline(&self) -> Option<&PolicyRow> {
        self.row(PolicyKind::MostGarbage)
    }
}

/// A configurable multi-run experiment over the shared-trace engine.
///
/// The one multi-run entry point: set [`Experiment::with_threads`],
/// [`Experiment::with_cache`], and [`Experiment::with_telemetry`] as
/// needed, then call [`Experiment::compare`] for a policy grid or
/// [`Experiment::run_jobs`] for arbitrary labelled configurations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Experiment<'c> {
    threads: Option<usize>,
    cache: Option<&'c TraceCache>,
    telemetry: TelemetryLevel,
}

impl<'c> Experiment<'c> {
    /// An experiment with default settings: one worker thread per core, a
    /// private trace cache, telemetry off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (1 = sequential). Results are
    /// independent of this — each run is a pure function of its
    /// configuration — which the determinism test below pins down.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replays from (and records into) an explicit [`TraceCache`], so
    /// several experiments over overlapping parameter sets — e.g. the
    /// tables and figures of one full evaluation — share recorded traces
    /// across calls.
    #[must_use]
    pub fn with_cache(mut self, cache: &'c TraceCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Taps every run at the given telemetry level. Snapshots come back on
    /// [`Comparison::telemetry`] / [`PolicyRow::telemetry`] (for
    /// [`Experiment::compare`]) or on each [`RunOutcome::telemetry`] (for
    /// [`Experiment::run_jobs`]).
    #[must_use]
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// Runs every `(policy, seed)` combination and aggregates per policy.
    ///
    /// `make_config` builds the run configuration for each combination —
    /// usually [`RunConfig::paper`] or one of the [`crate::paper`]
    /// factories.
    pub fn compare(
        &self,
        policies: &[PolicyKind],
        seeds: &[u64],
        make_config: impl Fn(PolicyKind, u64) -> RunConfig + Sync,
    ) -> Result<Comparison> {
        // Seed-major job order: all policies replaying one seed's trace are
        // adjacent in the schedule, so the shared buffer stays hot.
        // Aggregation below is policy-major regardless of job order, and
        // within one policy outcomes land in seed order either way, so the
        // reduced rows are bit-identical to any other job ordering.
        let mut jobs: Vec<(usize, RunConfig)> = Vec::new();
        for &seed in seeds {
            for (pi, &policy) in policies.iter().enumerate() {
                jobs.push((pi, make_config(policy, seed)));
            }
        }
        let results = self.run_jobs(jobs)?;

        let telemetry = results
            .iter()
            .filter_map(|(_, out)| {
                out.telemetry.as_ref().map(|snap| RunTelemetry {
                    policy: out.policy,
                    seed: out.seed,
                    snapshot: snap.clone(),
                })
            })
            .collect();
        let mut per_policy: Vec<Vec<RunOutcome>> =
            (0..policies.len()).map(|_| Vec::new()).collect();
        for (pi, outcome) in results {
            per_policy[pi].push(outcome);
        }
        let rows = policies
            .iter()
            .zip(&per_policy)
            .map(|(&p, runs)| PolicyRow::from_runs(p, runs))
            .collect();
        Ok(Comparison { rows, telemetry })
    }

    /// Runs a set of independent labelled configurations, preserving label
    /// order, on the shared-trace scheduler: it deduplicates the jobs'
    /// workload parameters, records each distinct trace once (in
    /// parallel), then replays every job from the shared encoded buffers.
    ///
    /// Results land in pre-sized per-job [`OnceLock`] slots — label order
    /// is preserved by construction, with no completion-path lock and no
    /// post-sort.
    pub fn run_jobs<L: Send + Sync>(
        &self,
        jobs: Vec<(L, RunConfig)>,
    ) -> Result<Vec<(L, RunOutcome)>> {
        let level = self.telemetry;
        let owned_cache;
        let cache = match self.cache {
            Some(c) => c,
            None => {
                owned_cache = TraceCache::new();
                &owned_cache
            }
        };
        let threads = self
            .threads
            .unwrap_or_else(default_threads)
            .min(jobs.len().max(1));
        let run_one = |cfg: &RunConfig| -> Result<RunOutcome> {
            let trace = cache.get_or_record(&cfg.workload)?;
            Simulation::builder(cfg)
                .trace(&trace)
                .telemetry(level)
                .run()
        };
        if threads <= 1 {
            return jobs
                .into_iter()
                .map(|(label, cfg)| run_one(&cfg).map(|o| (label, o)))
                .collect();
        }

        // Phase 1 — group by workload parameters and record each distinct
        // trace exactly once, in parallel across the groups (the per-seed
        // generator runs dominate this phase; policies share everything).
        let mut unique: Vec<&WorkloadParams> = Vec::new();
        for (_, cfg) in &jobs {
            if !unique.contains(&&cfg.workload) {
                unique.push(&cfg.workload);
            }
        }
        let next_unique = AtomicUsize::new(0);
        let recorded: Vec<OnceLock<Result<()>>> =
            (0..unique.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(unique.len()) {
                scope.spawn(|| loop {
                    let i = next_unique.fetch_add(1, Ordering::Relaxed);
                    let Some(params) = unique.get(i) else { break };
                    let outcome = cache.get_or_record(params).map(drop);
                    assert!(recorded[i].set(outcome).is_ok(), "slot claimed once");
                });
            }
        });
        for slot in recorded {
            slot.into_inner().expect("every slot recorded")?;
        }

        // Phase 2 — fan the shared traces out to the policy workers. Each
        // worker claims job indices from an atomic counter and writes its
        // outcome into that job's own slot.
        let next_job = AtomicUsize::new(0);
        let job_slots: Vec<Mutex<Option<(L, RunConfig)>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<OnceLock<Result<(L, RunOutcome)>>> =
            (0..job_slots.len()).map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = job_slots.get(i) else { break };
                    let (label, cfg) = slot
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("each job index is claimed exactly once");
                    let outcome = run_one(&cfg).map(|o| (label, o));
                    assert!(results[i].set(outcome).is_ok(), "slot claimed once");
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job slot filled"))
            .collect()
    }
}

/// The default worker-thread count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(policy: PolicyKind, seed: u64) -> RunConfig {
        RunConfig::small().with_policy(policy).with_seed(seed)
    }

    #[test]
    fn comparison_has_one_row_per_policy_in_order() {
        let policies = [
            PolicyKind::NoCollection,
            PolicyKind::UpdatedPointer,
            PolicyKind::MostGarbage,
        ];
        let cmp = Experiment::new()
            .compare(&policies, &[1, 2], small_cfg)
            .unwrap();
        assert_eq!(cmp.rows.len(), 3);
        assert_eq!(cmp.rows[0].policy, PolicyKind::NoCollection);
        assert_eq!(cmp.rows[2].policy, PolicyKind::MostGarbage);
        assert_eq!(cmp.rows[1].app_ios.n, 2);
        assert!(cmp.baseline().is_some());
        assert!(cmp.row(PolicyKind::Random).is_none());
        assert!(cmp.telemetry.is_empty(), "telemetry defaults to off");
        assert!(cmp.rows[0].telemetry.is_none());
    }

    #[test]
    fn no_collection_row_has_zero_gc_cost() {
        let cmp = Experiment::new()
            .compare(&[PolicyKind::NoCollection], &[1], small_cfg)
            .unwrap();
        let row = &cmp.rows[0];
        assert_eq!(row.gc_ios.mean, 0.0);
        assert_eq!(row.reclaimed_kb.mean, 0.0);
        assert_eq!(row.fraction_pct.mean, 0.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // run_jobs with one job falls back to sequential; many jobs use
        // threads. Both must produce the same totals for the same configs.
        let cfg = small_cfg(PolicyKind::Random, 9);
        let exp = Experiment::new();
        let seq = exp.run_jobs(vec![("only", cfg.clone())]).unwrap();
        let par = exp
            .run_jobs(vec![
                ("a", cfg.clone()),
                ("b", cfg.clone()),
                ("c", cfg.clone()),
                ("d", cfg.clone()),
            ])
            .unwrap();
        for (_, out) in &par {
            assert_eq!(out.totals, seq[0].1.totals);
        }
        // Labels preserved in order.
        let labels: Vec<&str> = par.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn compare_is_thread_count_invariant() {
        // The full grid on 1 worker thread and on several must aggregate to
        // bit-identical rows: scheduling order cannot leak into results.
        let policies = [
            PolicyKind::UpdatedPointer,
            PolicyKind::Random,
            PolicyKind::MostGarbage,
        ];
        let seeds = [11, 12, 13];
        let sequential = Experiment::new()
            .with_threads(1)
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        let parallel = Experiment::new()
            .with_threads(4)
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        assert_eq!(sequential.rows, parallel.rows);
    }

    #[test]
    fn shared_trace_grid_matches_independent_generation() {
        // The trace-driven scheduler must be observationally identical to
        // running each (policy, seed) job with its own live generator.
        let policies = [PolicyKind::UpdatedPointer, PolicyKind::MostGarbage];
        let seeds = [5, 6];
        let cmp = Experiment::new()
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        for &policy in &policies {
            let solo: Vec<RunOutcome> = seeds
                .iter()
                .map(|&seed| Simulation::builder(&small_cfg(policy, seed)).run().unwrap())
                .collect();
            let expected = PolicyRow::from_runs(policy, &solo);
            assert_eq!(cmp.row(policy), Some(&expected), "policy {policy:?}");
        }
    }

    #[test]
    fn trace_cache_is_shared_across_calls_and_records_once_per_seed() {
        let cache = pgc_workload::TraceCache::new();
        let policies = [PolicyKind::UpdatedPointer, PolicyKind::Random];
        let seeds = [21, 22, 23];
        let exp = Experiment::new().with_cache(&cache);
        let first = exp
            .with_threads(4)
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        assert_eq!(cache.len(), seeds.len(), "one trace per seed, not per job");
        // A second comparison over the same seeds replays from the cache
        // (no new entries) and reduces to bit-identical rows.
        let second = exp
            .with_threads(2)
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        assert_eq!(cache.len(), seeds.len());
        assert_eq!(first.rows, second.rows);
    }

    #[test]
    fn run_jobs_propagates_recording_errors() {
        let mut bad = small_cfg(PolicyKind::Random, 1);
        bad.workload.tree_nodes_min = 0; // fails validation at record time
        let jobs = vec![("ok", small_cfg(PolicyKind::Random, 1)), ("bad", bad)];
        assert!(Experiment::new().with_threads(2).run_jobs(jobs).is_err());
    }

    #[test]
    fn telemetry_rides_the_comparison_without_perturbing_rows() {
        let policies = [PolicyKind::UpdatedPointer, PolicyKind::Random];
        let seeds = [31, 32];
        let plain = Experiment::new()
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        let tapped = Experiment::new()
            .with_telemetry(TelemetryLevel::Full)
            .compare(&policies, &seeds, small_cfg)
            .unwrap();
        // Same table numbers with and without the tap.
        for (p, t) in plain.rows.iter().zip(&tapped.rows) {
            assert_eq!(p.app_ios, t.app_ios);
            assert_eq!(p.gc_ios, t.gc_ios);
            assert_eq!(p.collections, t.collections);
        }
        // One labelled snapshot per job, seed-major.
        assert_eq!(tapped.telemetry.len(), policies.len() * seeds.len());
        assert_eq!(tapped.telemetry[0].seed, 31);
        assert_eq!(tapped.telemetry[0].policy, PolicyKind::UpdatedPointer);
        // Per-policy merged aggregates match the run count and activations.
        let row = cmp_row(&tapped, PolicyKind::UpdatedPointer);
        let merged = row.telemetry.as_ref().expect("tapped row has telemetry");
        assert_eq!(merged.runs, seeds.len() as u32);
        let expected_collections = row.collections.mean * row.collections.n as f64;
        assert!((merged.counters.collections as f64 - expected_collections).abs() < 1e-6);
        assert!(
            merged.records.is_empty(),
            "merge drops per-activation records"
        );
    }

    fn cmp_row(cmp: &Comparison, policy: PolicyKind) -> &PolicyRow {
        cmp.row(policy).expect("row present")
    }
}
