//! Multi-run experiments: policy comparisons over seed sets.
//!
//! The paper's tables aggregate ten same-configuration runs per policy,
//! differing only in random seed. [`compare_policies`] runs the full
//! (policy × seed) grid — in parallel across OS threads, since runs are
//! independent — and reduces each policy's runs to [`Summary`] statistics
//! per metric.

use crate::run::{RunConfig, RunOutcome, Simulation};
use crate::summary::Summary;
use pgc_core::PolicyKind;
use pgc_types::Result;
use std::sync::Mutex;

/// Aggregated metrics for one policy across seeds — one table row.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// The policy.
    pub policy: PolicyKind,
    /// Application page I/Os.
    pub app_ios: Summary,
    /// Collector page I/Os.
    pub gc_ios: Summary,
    /// Total page I/Os.
    pub total_ios: Summary,
    /// Maximum storage footprint in KB.
    pub max_storage_kb: Summary,
    /// Partition count.
    pub partitions: Summary,
    /// Garbage reclaimed in KB.
    pub reclaimed_kb: Summary,
    /// Total garbage generated in KB (reclaimed + unreclaimed at end).
    pub actual_garbage_kb: Summary,
    /// Percent of generated garbage reclaimed.
    pub fraction_pct: Summary,
    /// Collector efficiency in KB reclaimed per collector I/O.
    pub efficiency_kb_per_io: Summary,
    /// Final distributed (nepotism-retained) garbage in KB.
    pub nepotism_kb: Summary,
    /// Collections performed.
    pub collections: Summary,
}

impl PolicyRow {
    fn from_runs(policy: PolicyKind, runs: &[RunOutcome]) -> Self {
        let pick =
            |f: &dyn Fn(&RunOutcome) -> f64| Summary::of(&runs.iter().map(f).collect::<Vec<f64>>());
        Self {
            policy,
            app_ios: pick(&|r| r.totals.app_ios as f64),
            gc_ios: pick(&|r| r.totals.gc_ios as f64),
            total_ios: pick(&|r| r.totals.total_ios() as f64),
            max_storage_kb: pick(&|r| r.totals.max_footprint.as_kib_f64()),
            partitions: pick(&|r| r.totals.partitions as f64),
            reclaimed_kb: pick(&|r| r.totals.reclaimed_bytes.as_kib_f64()),
            actual_garbage_kb: pick(&|r| r.totals.actual_garbage_bytes().as_kib_f64()),
            fraction_pct: pick(&|r| r.totals.fraction_reclaimed_pct()),
            efficiency_kb_per_io: pick(&|r| r.totals.efficiency_kb_per_io()),
            nepotism_kb: pick(&|r| r.totals.final_nepotism_bytes.as_kib_f64()),
            collections: pick(&|r| r.totals.collections as f64),
        }
    }
}

/// A full policy comparison: one row per policy, paper row order preserved.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rows, in the order the policies were given.
    pub rows: Vec<PolicyRow>,
}

impl Comparison {
    /// The row for one policy, if present.
    pub fn row(&self, policy: PolicyKind) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// The `MostGarbage` row (the paper's "Relative = 1" baseline).
    pub fn baseline(&self) -> Option<&PolicyRow> {
        self.row(PolicyKind::MostGarbage)
    }
}

/// Runs every `(policy, seed)` combination and aggregates per policy.
///
/// `make_config` builds the run configuration for each combination —
/// usually [`RunConfig::paper`] or one of the [`crate::paper`] factories.
pub fn compare_policies(
    policies: &[PolicyKind],
    seeds: &[u64],
    make_config: impl Fn(PolicyKind, u64) -> RunConfig + Sync,
) -> Result<Comparison> {
    compare_policies_with_threads(policies, seeds, default_threads(), make_config)
}

/// [`compare_policies`] with an explicit worker-thread count.
///
/// Results are independent of `threads` — each run is a pure function of
/// its configuration — which the determinism test below pins down.
pub fn compare_policies_with_threads(
    policies: &[PolicyKind],
    seeds: &[u64],
    threads: usize,
    make_config: impl Fn(PolicyKind, u64) -> RunConfig + Sync,
) -> Result<Comparison> {
    let mut jobs: Vec<(usize, RunConfig)> = Vec::new();
    for (pi, &policy) in policies.iter().enumerate() {
        for &seed in seeds {
            jobs.push((pi, make_config(policy, seed)));
        }
    }
    let results = run_jobs_on(jobs, threads)?;

    let mut per_policy: Vec<Vec<RunOutcome>> = (0..policies.len()).map(|_| Vec::new()).collect();
    for (pi, outcome) in results {
        per_policy[pi].push(outcome);
    }
    let rows = policies
        .iter()
        .zip(&per_policy)
        .map(|(&p, runs)| PolicyRow::from_runs(p, runs))
        .collect();
    Ok(Comparison { rows })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a set of independent configurations in parallel, preserving labels.
pub fn run_jobs<L: Send>(jobs: Vec<(L, RunConfig)>) -> Result<Vec<(L, RunOutcome)>> {
    run_jobs_on(jobs, default_threads())
}

/// [`run_jobs`] with an explicit worker-thread count (1 = sequential).
pub fn run_jobs_on<L: Send>(
    jobs: Vec<(L, RunConfig)>,
    threads: usize,
) -> Result<Vec<(L, RunOutcome)>> {
    let threads = threads.min(jobs.len().max(1));
    if threads <= 1 {
        return jobs
            .into_iter()
            .map(|(label, cfg)| Simulation::run(&cfg).map(|o| (label, o)))
            .collect();
    }
    type Slot<L> = (usize, Result<(L, RunOutcome)>);
    let queue = Mutex::new(jobs.into_iter().enumerate().collect::<Vec<_>>());
    let results: Mutex<Vec<Slot<L>>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                let Some((idx, (label, cfg))) = job else {
                    break;
                };
                let outcome = Simulation::run(&cfg).map(|o| (label, o));
                results
                    .lock()
                    .expect("results poisoned")
                    .push((idx, outcome));
            });
        }
    });
    let mut collected = results.into_inner().expect("results poisoned");
    collected.sort_by_key(|(idx, _)| *idx);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(policy: PolicyKind, seed: u64) -> RunConfig {
        RunConfig::small().with_policy(policy).with_seed(seed)
    }

    #[test]
    fn comparison_has_one_row_per_policy_in_order() {
        let policies = [
            PolicyKind::NoCollection,
            PolicyKind::UpdatedPointer,
            PolicyKind::MostGarbage,
        ];
        let cmp = compare_policies(&policies, &[1, 2], small_cfg).unwrap();
        assert_eq!(cmp.rows.len(), 3);
        assert_eq!(cmp.rows[0].policy, PolicyKind::NoCollection);
        assert_eq!(cmp.rows[2].policy, PolicyKind::MostGarbage);
        assert_eq!(cmp.rows[1].app_ios.n, 2);
        assert!(cmp.baseline().is_some());
        assert!(cmp.row(PolicyKind::Random).is_none());
    }

    #[test]
    fn no_collection_row_has_zero_gc_cost() {
        let cmp = compare_policies(&[PolicyKind::NoCollection], &[1], small_cfg).unwrap();
        let row = &cmp.rows[0];
        assert_eq!(row.gc_ios.mean, 0.0);
        assert_eq!(row.reclaimed_kb.mean, 0.0);
        assert_eq!(row.fraction_pct.mean, 0.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // run_jobs with one job falls back to sequential; many jobs use
        // threads. Both must produce the same totals for the same configs.
        let cfg = small_cfg(PolicyKind::Random, 9);
        let seq = run_jobs(vec![("only", cfg.clone())]).unwrap();
        let par = run_jobs(vec![
            ("a", cfg.clone()),
            ("b", cfg.clone()),
            ("c", cfg.clone()),
            ("d", cfg.clone()),
        ])
        .unwrap();
        for (_, out) in &par {
            assert_eq!(out.totals, seq[0].1.totals);
        }
        // Labels preserved in order.
        let labels: Vec<&str> = par.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn compare_policies_is_thread_count_invariant() {
        // The full grid on 1 worker thread and on several must aggregate to
        // bit-identical rows: scheduling order cannot leak into results.
        let policies = [
            PolicyKind::UpdatedPointer,
            PolicyKind::Random,
            PolicyKind::MostGarbage,
        ];
        let seeds = [11, 12, 13];
        let sequential = compare_policies_with_threads(&policies, &seeds, 1, small_cfg).unwrap();
        let parallel = compare_policies_with_threads(&policies, &seeds, 4, small_cfg).unwrap();
        assert_eq!(sequential.rows, parallel.rows);
    }
}
