//! A self-contained simulation shard: one database plus everything that
//! drives it.
//!
//! [`Shard`] bundles what [`crate::run::Simulation`] used to wire inline —
//! a [`pgc_odb::Database`], the driving policy and trigger scheduler
//! inside a [`pgc_core::Collector`], the barrier event bus with its
//! bystander observers, an optional telemetry tap, and time-series
//! sampling state — behind a stepping API: feed it events one at a time
//! ([`Shard::step`]), as recorded batches ([`Shard::step_batch`]), or as
//! decoded SoA blocks ([`Shard::step_block`]), then [`Shard::finish`] it
//! into a [`RunOutcome`].
//!
//! `Simulation::builder(cfg).run()` is now exactly a 1-shard special case:
//! it builds one `Shard`, streams the configured event source into it, and
//! finishes it. A sharded runtime (the `pgc-server` crate) instead hosts
//! one `Shard` per client session across N worker threads — each shard
//! owns its partitions, policy, scheduler, and telemetry, so sessions
//! never share mutable state and per-stream results are bit-identical to
//! a dedicated single-`Simulation` run at any shard count. Server workers
//! lean on [`Shard::step_block`]'s invisibility guarantee: batches
//! arriving over the ring inboxes are coalesced into full SoA blocks
//! (decoded straight from shared encoded traces) without changing any
//! result, because block boundaries — including sample boundaries split
//! mid-block — replay exactly like per-event stepping.

use crate::metrics::{RunTotals, SamplePoint, TimeSeries};
use crate::replay::Replayer;
use crate::run::{RunConfig, RunOutcome};
use pgc_durable::{DurableStore, LogObserver, SafepointSignal};
use pgc_odb::oracle::{self, OracleScratch};
use pgc_odb::BarrierObserver;
use pgc_telemetry::{
    DeriveSummary, StorageSummary, TelemetryHandle, TelemetryLevel, TelemetryObserver,
};
use pgc_types::{Oid, Result};
use pgc_workload::generator::GenStats;
use pgc_workload::{Event, EventBlock, NodeId};
use std::sync::Arc;

/// The persistence half of a shard: the write side of a data directory
/// plus the bus signal that tells the shard when a collection completed
/// (the store itself stays off the bus — it needs `&Database` and file
/// handles, which bystander observers must not hold).
struct DurableState {
    store: DurableStore,
    signal: Arc<SafepointSignal>,
    /// Collections already covered by a safepoint frame.
    safepointed: u64,
    manifest_written: bool,
}

/// One database + policy + scheduler + barrier bus + telemetry handle,
/// stepped by event batches.
pub struct Shard {
    cfg: RunConfig,
    replayer: Replayer,
    telemetry: Option<TelemetryHandle>,
    telemetry_level: TelemetryLevel,
    durable: Option<DurableState>,
    series: TimeSeries,
    scratch: OracleScratch,
    sample_every: u64,
    next_sample: u64,
}

impl Shard {
    /// Builds a shard for `cfg`: fresh database, the configured policy and
    /// trigger wired into a collector, no telemetry. Register bus
    /// observers with [`Shard::add_observer`] and a telemetry tap with
    /// [`Shard::enable_telemetry`] *before* stepping the first event.
    pub fn new(cfg: &RunConfig) -> Result<Self> {
        let mut replayer = cfg.build_replayer()?;
        let sample_every = cfg.sample_every.unwrap_or(u64::MAX);
        let durable = if cfg.durability.is_enabled() {
            let store = DurableStore::create(&cfg.durability)?;
            let (observer, signal) = LogObserver::new();
            replayer.collector_mut().add_observer(Box::new(observer));
            Some(DurableState {
                store,
                signal,
                safepointed: 0,
                manifest_written: false,
            })
        } else {
            None
        };
        Ok(Self {
            cfg: cfg.clone(),
            replayer,
            telemetry: None,
            telemetry_level: TelemetryLevel::Off,
            durable,
            series: TimeSeries::new(),
            scratch: OracleScratch::new(),
            sample_every,
            next_sample: sample_every,
        })
    }

    /// Registers a bystander observer on the shard's barrier bus.
    pub fn add_observer(&mut self, observer: Box<dyn BarrierObserver>) {
        self.replayer.collector_mut().add_observer(observer);
    }

    /// Registers a telemetry tap at `level` (a no-op at
    /// [`TelemetryLevel::Off`] or when a tap is already riding the bus).
    /// The captured snapshot surfaces on [`RunOutcome::telemetry`] after
    /// [`Shard::finish`].
    pub fn enable_telemetry(&mut self, level: TelemetryLevel) {
        if level.is_enabled() && self.telemetry.is_none() {
            let (obs, handle) = TelemetryObserver::new(level, self.cfg.trigger_reason());
            self.replayer.collector_mut().add_observer(Box::new(obs));
            self.telemetry = Some(handle);
            self.telemetry_level = level;
        }
    }

    /// The configuration the shard was built from.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The shard's database.
    pub fn db(&self) -> &pgc_odb::Database {
        self.replayer.db()
    }

    /// The shard's collector (policy + scheduler + bus).
    pub fn collector(&self) -> &pgc_core::Collector {
        self.replayer.collector()
    }

    /// Events stepped so far.
    pub fn events_applied(&self) -> u64 {
        self.replayer.events_applied()
    }

    /// Resolves a workload node id to the shard-local database oid (the
    /// hook a sharded runtime uses to key cross-shard references).
    pub fn oid_of(&self, node: NodeId) -> Option<Oid> {
        self.replayer.oid_of(node)
    }

    /// Steps one event: write-ahead logs it (when durability is on),
    /// charges its I/O, pumps the barrier bus, collects when the trigger
    /// fires, takes a time-series sample at each configured boundary, and
    /// drives a durability safepoint when a collection completed.
    pub fn step(&mut self, event: &Event) -> Result<()> {
        self.log_event(event)?;
        self.replayer.apply(event)?;
        self.maybe_sample();
        self.maybe_safepoint()
    }

    /// Steps a batch of events (a session inbox message, a recorded
    /// slice). Semantics are exactly [`Shard::step`] in order.
    pub fn step_batch(&mut self, events: &[Event]) -> Result<()> {
        for event in events {
            self.step(event)?;
        }
        Ok(())
    }

    /// Steps one decoded SoA block, stopping at each sample boundary
    /// inside it. Bit-identical to stepping the block's events one by one.
    /// Durability safepoints land at block granularity here (the whole
    /// block is logged ahead, then one safepoint check follows it) — the
    /// log stays a faithful write-ahead record either way.
    pub fn step_block(&mut self, block: &EventBlock) -> Result<()> {
        if self.durable.is_some() {
            for event in block.iter() {
                self.log_event(&event)?;
            }
        }
        if self.sample_every == u64::MAX {
            self.replayer.apply_block(block, 0, block.len())?;
            return self.maybe_safepoint();
        }
        let mut at = 0usize;
        while at < block.len() {
            let room = self
                .next_sample
                .saturating_sub(self.replayer.events_applied())
                .min((block.len() - at) as u64) as usize;
            self.replayer.apply_block(block, at, at + room)?;
            at += room;
            self.maybe_sample();
        }
        self.maybe_safepoint()
    }

    /// Write-ahead: the event reaches the change log before it is applied,
    /// and the manifest reaches disk before the first event (written
    /// lazily so [`Shard::enable_telemetry`] can still run after
    /// [`Shard::new`]).
    fn log_event(&mut self, event: &Event) -> Result<()> {
        let Some(durable) = self.durable.as_mut() else {
            return Ok(());
        };
        if !durable.manifest_written {
            let manifest = crate::durable::manifest_for(&self.cfg, self.telemetry_level);
            durable.store.write_manifest(&manifest)?;
            durable.manifest_written = true;
        }
        durable.store.append_event(event)
    }

    /// Persists a safepoint when the bus signal says collections completed
    /// since the last one.
    fn maybe_safepoint(&mut self) -> Result<()> {
        let Some(durable) = self.durable.as_mut() else {
            return Ok(());
        };
        let completed = durable.signal.collections();
        if completed > durable.safepointed {
            durable.store.safepoint(
                self.replayer.db(),
                self.replayer.events_applied(),
                completed,
                false,
            )?;
            durable.safepointed = completed;
        }
        Ok(())
    }

    fn maybe_sample(&mut self) {
        if self.replayer.events_applied() >= self.next_sample {
            take_sample(&mut self.series, &self.replayer, &mut self.scratch);
            self.next_sample += self.sample_every;
        }
    }

    /// Condenses the shard into a [`RunOutcome`]: one final time-series
    /// sample (when sampling is on), a last oracle pass for the
    /// live/garbage split, the aggregate totals, the collection log, and
    /// the telemetry snapshot with the driving policy's derive and storage
    /// counters mirrored onto it. When durability is on, the store is
    /// closed first — a forced final snapshot generation, the closing
    /// safepoint frame, and a last fsync — which is the only way this can
    /// fail.
    ///
    /// `gen_stats` labels the outcome with the workload generator's
    /// counters (zeroed for replays of unlabelled event slices).
    pub fn finish(mut self, gen_stats: GenStats) -> Result<RunOutcome> {
        if self.cfg.sample_every.is_some() {
            take_sample(&mut self.series, &self.replayer, &mut self.scratch);
        }
        let events = self.replayer.events_applied();
        let mut storage = None;
        if let Some(durable) = self.durable.as_mut() {
            let collections = durable.signal.collections();
            durable
                .store
                .finish(self.replayer.db(), events, collections)?;
            storage = Some(durable.store.stats());
        }
        let db = self.replayer.db();
        let final_report = oracle::analyze_with(db, &mut self.scratch);
        let io = db.io_stats();
        let db_stats = db.stats();
        let totals = RunTotals {
            app_ios: io.app_ios(),
            gc_ios: io.gc_ios(),
            max_footprint: db.total_footprint(),
            partitions: db.partition_count(),
            collections: db_stats.collections,
            reclaimed_bytes: db_stats.reclaimed_bytes,
            reclaimed_objects: db_stats.reclaimed_objects,
            final_live_bytes: final_report.live_bytes,
            final_garbage_bytes: final_report.garbage_bytes,
            final_nepotism_bytes: final_report.nepotism_bytes,
            events,
            app_net_ops: db.net_stats().app_reads + db.net_stats().app_writebacks,
            gc_net_ops: db.net_stats().gc_reads + db.net_stats().gc_writebacks,
        };
        let (_db, collector, collections) = self.replayer.into_parts();
        let derive = collector.policy().derive_stats();
        // The telemetry observer closes its in-flight activation record
        // when the collector drops it; finish the handle only after.
        drop(collector);
        let mut telemetry = self.telemetry.map(TelemetryHandle::finish);
        if let (Some(snap), Some(stats)) = (telemetry.as_mut(), derive) {
            snap.derive = Some(DeriveSummary {
                inputs: stats.inputs,
                queries: stats.queries,
                revision: stats.revision,
                hits: stats.hits,
                partial: stats.partial,
                full: stats.full,
            });
        }
        if let (Some(snap), Some(stats)) = (telemetry.as_mut(), storage) {
            snap.storage = Some(StorageSummary {
                log_bytes: stats.log_bytes,
                log_frames: stats.log_frames,
                log_segments: stats.log_segments,
                fsyncs: stats.fsyncs,
                snapshots: stats.snapshots,
                snapshot_bytes: stats.snapshot_bytes,
                safepoints: stats.safepoints,
            });
        }
        Ok(RunOutcome {
            policy: self.cfg.policy,
            seed: self.cfg.workload.seed,
            totals,
            series: self.series,
            db_stats,
            gen_stats,
            collections,
            telemetry,
            derive,
            storage,
        })
    }
}

fn take_sample(series: &mut TimeSeries, replayer: &Replayer, scratch: &mut OracleScratch) {
    let db = replayer.db();
    let report = oracle::analyze_with(db, scratch);
    series.push(SamplePoint {
        events: replayer.events_applied(),
        resident_bytes: db.resident_bytes(),
        garbage_bytes: report.garbage_bytes,
        footprint: db.total_footprint(),
        collections: db.stats().collections,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Simulation;
    use pgc_workload::SyntheticWorkload;

    #[test]
    fn stepping_a_shard_matches_a_simulation_run() {
        let cfg = RunConfig::small().with_seed(31).with_sampling(5_000);
        let via_sim = Simulation::builder(&cfg).run().unwrap();

        let mut generator = SyntheticWorkload::new(cfg.workload.clone()).unwrap();
        let mut shard = Shard::new(&cfg).unwrap();
        for event in generator.by_ref() {
            shard.step(&event).unwrap();
        }
        let via_shard = shard.finish(generator.stats()).unwrap();

        assert_eq!(via_sim.totals, via_shard.totals);
        assert_eq!(via_sim.collections, via_shard.collections);
        assert_eq!(via_sim.db_stats, via_shard.db_stats);
        assert_eq!(via_sim.gen_stats, via_shard.gen_stats);
        assert_eq!(via_sim.series.points(), via_shard.series.points());
        assert_eq!(via_sim.derive, via_shard.derive);
    }

    #[test]
    fn batch_boundaries_do_not_perturb_a_shard() {
        let cfg = RunConfig::small().with_seed(32);
        let events: Vec<Event> = SyntheticWorkload::new(cfg.workload.clone())
            .unwrap()
            .collect();

        let mut whole = Shard::new(&cfg).unwrap();
        whole.step_batch(&events).unwrap();
        let whole = whole.finish(GenStats::default()).unwrap();

        let mut chunked = Shard::new(&cfg).unwrap();
        // Ragged batch sizes: the session layer never sees tidy chunks.
        for chunk in events.chunks(97) {
            chunked.step_batch(chunk).unwrap();
        }
        let chunked = chunked.finish(GenStats::default()).unwrap();

        assert_eq!(whole.totals, chunked.totals);
        assert_eq!(whole.collections, chunked.collections);
    }

    #[test]
    fn telemetry_taps_the_shard_bus() {
        let cfg = RunConfig::small().with_seed(33);
        let events: Vec<Event> = SyntheticWorkload::new(cfg.workload.clone())
            .unwrap()
            .collect();
        let mut shard = Shard::new(&cfg).unwrap();
        shard.enable_telemetry(pgc_telemetry::TelemetryLevel::Full);
        shard.step_batch(&events).unwrap();
        let out = shard.finish(GenStats::default()).unwrap();
        let snap = out.telemetry.expect("telemetry requested");
        assert_eq!(snap.counters.activations, out.totals.collections);
        assert_eq!(snap.records.len() as u64, out.totals.collections);
        assert_eq!(
            snap.derive.map(|d| d.revision),
            out.derive.map(|d| d.revision)
        );
    }
}
