//! Run-level metrics: the numbers behind every table and figure.

use pgc_types::Bytes;
use std::fmt::Write as _;

/// Aggregate results of one simulation run.
///
/// Field-for-field these are the quantities the paper's tables report:
/// application/collector/total page I/Os (Table 2), maximum storage and
/// partition count (Table 3), reclaimed garbage, actual garbage, fraction
/// and collector efficiency (Table 4), and the inputs to the connectivity
/// analysis (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunTotals {
    /// Disk page I/Os performed while the application ran.
    pub app_ios: u64,
    /// Disk page I/Os performed by the collector.
    pub gc_ios: u64,
    /// Maximum storage footprint: partitions × partition size (includes
    /// unreclaimed garbage and fragmentation — partitions are the unit of
    /// disk allocation).
    pub max_footprint: Bytes,
    /// Number of partitions at the end of the run.
    pub partitions: usize,
    /// Collections performed.
    pub collections: u64,
    /// Bytes reclaimed across all collections.
    pub reclaimed_bytes: Bytes,
    /// Objects reclaimed across all collections.
    pub reclaimed_objects: u64,
    /// Bytes of live (reachable) objects at the end of the run.
    pub final_live_bytes: Bytes,
    /// Bytes of unreclaimed garbage at the end of the run.
    pub final_garbage_bytes: Bytes,
    /// Of the final garbage, bytes retained only through remembered
    /// pointers from garbage elsewhere (nepotism / distributed garbage).
    pub final_nepotism_bytes: Bytes,
    /// Application events applied.
    pub events: u64,
    /// Network page messages attributed to the application (zero unless
    /// the client/server cost model is enabled).
    pub app_net_ops: u64,
    /// Network page messages attributed to the collector.
    pub gc_net_ops: u64,
}

impl RunTotals {
    /// Total page I/Os (application + collector), the paper's throughput
    /// metric.
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.app_ios + self.gc_ios
    }

    /// Total network page messages (client/server model only).
    #[inline]
    pub fn total_net_ops(&self) -> u64 {
        self.app_net_ops + self.gc_net_ops
    }

    /// Total garbage ever generated: reclaimed plus still unreclaimed at
    /// the end (the paper's "Actual Garbage" row).
    #[inline]
    pub fn actual_garbage_bytes(&self) -> Bytes {
        self.reclaimed_bytes + self.final_garbage_bytes
    }

    /// Fraction of all generated garbage that was reclaimed, in percent.
    pub fn fraction_reclaimed_pct(&self) -> f64 {
        let actual = self.actual_garbage_bytes().get();
        if actual == 0 {
            0.0
        } else {
            100.0 * self.reclaimed_bytes.get() as f64 / actual as f64
        }
    }

    /// Collector efficiency: kilobytes reclaimed per collector I/O (the
    /// paper's Table 4 metric). Zero when the collector never ran.
    pub fn efficiency_kb_per_io(&self) -> f64 {
        if self.gc_ios == 0 {
            0.0
        } else {
            self.reclaimed_bytes.as_kib_f64() / self.gc_ios as f64
        }
    }
}

/// One point of the time-varying curves (Figures 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePoint {
    /// Application events applied when the sample was taken.
    pub events: u64,
    /// Database size: live + unreclaimed garbage bytes (Figure 5).
    pub resident_bytes: Bytes,
    /// Unreclaimed garbage bytes, from the oracle (Figure 4).
    pub garbage_bytes: Bytes,
    /// Storage footprint (partitions × partition size).
    pub footprint: Bytes,
    /// Collections performed so far.
    pub collections: u64,
}

/// A sampled time series over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeries {
    points: Vec<SamplePoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample (events must be non-decreasing).
    pub fn push(&mut self, point: SamplePoint) {
        debug_assert!(
            self.points.last().is_none_or(|p| p.events <= point.events),
            "samples must be chronological"
        );
        self.points.push(point);
    }

    /// The sampled points.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// True when no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the series as CSV with a header row — the regeneration
    /// format for Figures 4 and 5 (plot `garbage_kb` or `resident_kb`
    /// against `events`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("events,resident_kb,garbage_kb,footprint_kb,collections\n");
        for p in &self.points {
            let _ = writeln!(
                out,
                "{},{:.1},{:.1},{:.1},{}",
                p.events,
                p.resident_bytes.as_kib_f64(),
                p.garbage_bytes.as_kib_f64(),
                p.footprint.as_kib_f64(),
                p.collections
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals() -> RunTotals {
        RunTotals {
            app_ios: 100,
            gc_ios: 50,
            max_footprint: Bytes::from_kib(384),
            partitions: 3,
            collections: 5,
            reclaimed_bytes: Bytes::from_kib(200),
            reclaimed_objects: 2000,
            final_live_bytes: Bytes::from_kib(300),
            final_garbage_bytes: Bytes::from_kib(100),
            final_nepotism_bytes: Bytes::from_kib(10),
            events: 10_000,
            app_net_ops: 0,
            gc_net_ops: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let t = totals();
        assert_eq!(t.total_ios(), 150);
        assert_eq!(t.actual_garbage_bytes(), Bytes::from_kib(300));
        assert!((t.fraction_reclaimed_pct() - 66.666).abs() < 0.01);
        assert!((t.efficiency_kb_per_io() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let t = RunTotals::default();
        assert_eq!(t.fraction_reclaimed_pct(), 0.0);
        assert_eq!(t.efficiency_kb_per_io(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut ts = TimeSeries::new();
        ts.push(SamplePoint {
            events: 1000,
            resident_bytes: Bytes::from_kib(100),
            garbage_bytes: Bytes::from_kib(20),
            footprint: Bytes::from_kib(384),
            collections: 1,
        });
        ts.push(SamplePoint {
            events: 2000,
            resident_bytes: Bytes::from_kib(150),
            garbage_bytes: Bytes::from_kib(30),
            footprint: Bytes::from_kib(384),
            collections: 2,
        });
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("events,"));
        assert!(lines[1].starts_with("1000,100.0,20.0,384.0,1"));
        assert!(!ts.is_empty());
        assert_eq!(ts.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    #[cfg(debug_assertions)]
    fn out_of_order_samples_panic_in_debug() {
        let mut ts = TimeSeries::new();
        let p = SamplePoint {
            events: 10,
            resident_bytes: Bytes::ZERO,
            garbage_bytes: Bytes::ZERO,
            footprint: Bytes::ZERO,
            collections: 0,
        };
        ts.push(p);
        ts.push(SamplePoint { events: 5, ..p });
    }
}
