//! Plain-text rendering of the paper's tables and figures.
//!
//! Each `format_*` function turns experiment results into a table matching
//! the corresponding artifact of the paper (same rows, same columns, same
//! "Relative" normalization against `MostGarbage`), so a run of the bench
//! binaries can be eyeballed against the original side by side.

use crate::experiment::Comparison;
use crate::shadow::{agreement_table, regret_table, RaceOutcome};
use crate::summary::Summary;
use std::fmt::Write as _;

fn rel(row: &Summary, baseline: Option<&Summary>) -> f64 {
    match baseline {
        Some(b) => row.relative_to(b),
        None => 0.0,
    }
}

/// Table 2: Throughput as number of page I/O operations (Relative is
/// MostGarbage = 1).
pub fn format_table2(cmp: &Comparison) -> String {
    let base_total = cmp.baseline().map(|b| b.total_ios);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "Selection Policy", "App I/Os", "(sd)", "GC I/Os", "(sd)", "Total I/Os", "Relative"
    );
    for r in &cmp.rows {
        let _ = writeln!(
            out,
            "{:<18} {:>12.0} {:>9.0} {:>12.0} {:>9.0} {:>12.0} {:>9.3}",
            r.policy.name(),
            r.app_ios.mean,
            r.app_ios.std_dev,
            r.gc_ios.mean,
            r.gc_ios.std_dev,
            r.total_ios.mean,
            rel(&r.total_ios, base_total.as_ref()),
        );
    }
    out
}

/// Table 3: Maximum storage space usage (Relative is MostGarbage = 1).
pub fn format_table3(cmp: &Comparison) -> String {
    let base = cmp.baseline().map(|b| b.max_storage_kb);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>9} {:>9} {:>13} {:>9}",
        "Selection Policy", "Max Stor (KB)", "(sd)", "Relative", "# Partitions", "(sd)"
    );
    for r in &cmp.rows {
        let _ = writeln!(
            out,
            "{:<18} {:>14.0} {:>9.0} {:>9.3} {:>13.1} {:>9.2}",
            r.policy.name(),
            r.max_storage_kb.mean,
            r.max_storage_kb.std_dev,
            rel(&r.max_storage_kb, base.as_ref()),
            r.partitions.mean,
            r.partitions.std_dev,
        );
    }
    out
}

/// Table 4: Collector effectiveness and efficiency (Relative is
/// MostGarbage = 1). Includes the "Actual Garbage" line the paper prints
/// below the policy rows.
pub fn format_table4(cmp: &Comparison) -> String {
    let base_eff = cmp.baseline().map(|b| b.efficiency_kb_per_io);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>13} {:>8} {:>11} {:>8} {:>11} {:>9}",
        "Selection Policy", "Reclaimed KB", "(sd)", "Frac (%)", "(sd)", "Eff KB/IO", "Relative"
    );
    for r in &cmp.rows {
        let _ = writeln!(
            out,
            "{:<18} {:>13.0} {:>8.0} {:>11.2} {:>8.2} {:>11.2} {:>9.2}",
            r.policy.name(),
            r.reclaimed_kb.mean,
            r.reclaimed_kb.std_dev,
            r.fraction_pct.mean,
            r.fraction_pct.std_dev,
            r.efficiency_kb_per_io.mean,
            rel(&r.efficiency_kb_per_io, base_eff.as_ref()),
        );
    }
    // "Actual Garbage" is policy-independent in expectation; report the
    // value observed under the baseline (or the first row if absent).
    if let Some(row) = cmp.baseline().or(cmp.rows.first()) {
        let _ = writeln!(
            out,
            "{:<18} {:>13.0} {:>8.0}",
            "Actual Garbage", row.actual_garbage_kb.mean, row.actual_garbage_kb.std_dev
        );
    }
    out
}

/// Table 5: % of garbage reclaimed for each database connectivity. Takes
/// `(connectivity, comparison)` pairs, highest connectivity first (the
/// paper's column order).
pub fn format_table5(results: &[(f64, Comparison)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<18}", "Selection Policy");
    for (c, _) in results {
        let _ = write!(out, " {:>12}", format!("C = {c:.3}"));
    }
    let _ = writeln!(out);
    if let Some((_, first)) = results.first() {
        for r in &first.rows {
            let _ = write!(out, "{:<18}", r.policy.name());
            for (_, cmp) in results {
                let pct = cmp
                    .row(r.policy)
                    .map(|row| row.fraction_pct.mean)
                    .unwrap_or(0.0);
                let _ = write!(out, " {pct:>12.2}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Figure 6: storage required (MB) as a function of maximum allocated
/// storage, one column per sweep point.
pub fn format_figure6(results: &[(u64, Comparison)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<18}", "Selection Policy");
    for (mib, _) in results {
        let _ = write!(out, " {:>10}", format!("{mib} MB"));
    }
    let _ = writeln!(out, "   (storage required, MB)");
    if let Some((_, first)) = results.first() {
        for r in &first.rows {
            let _ = write!(out, "{:<18}", r.policy.name());
            for (_, cmp) in results {
                let mb = cmp
                    .row(r.policy)
                    .map(|row| row.max_storage_kb.mean / 1024.0)
                    .unwrap_or(0.0);
                let _ = write!(out, " {mb:>10.1}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Renders the policy-agreement matrix of a set of shadow-scoreboard races
/// (typically one per seed, same driver): for each shadow policy, how often
/// it would have picked the very partition the driver collected, and how
/// many activations passed before its first divergence from the driver.
pub fn format_policy_race(races: &[RaceOutcome]) -> String {
    let mut out = String::new();
    let Some(first) = races.first() else {
        return out;
    };
    let activations = Summary::of_u64(races.iter().map(|r| r.records.len() as u64));
    let _ = writeln!(
        out,
        "Driver: {}   ({} race(s), {:.1} activations each)",
        first.driver.name(),
        races.len(),
        activations.mean,
    );
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>8} {:>14} {:>8}",
        "Shadow Policy", "Agree (%)", "(sd)", "First Diverge", "(sd)"
    );
    for (shadow, pct, div) in agreement_table(races) {
        let _ = writeln!(
            out,
            "{:<18} {:>10.1} {:>8.1} {:>14.1} {:>8.1}",
            shadow.name(),
            pct.mean,
            pct.std_dev,
            div.mean,
            div.std_dev,
        );
    }
    out
}

/// Renders the cumulative-regret accounting of a set of shadow-scoreboard
/// races (typically one per seed, same driver): for each shadow policy,
/// the garbage its would-be picks earned under the credit-once rule the
/// `AdaptiveMeta` policy scores its candidates with, and its regret
/// relative to the driver's realized reclamation (positive = the driver
/// out-earned it).
pub fn format_regret(races: &[RaceOutcome]) -> String {
    let mut out = String::new();
    let Some(first) = races.first() else {
        return out;
    };
    let driver_kib = Summary::of(
        &races
            .iter()
            .map(|r| r.driver_credit() as f64 / 1024.0)
            .collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "Driver: {}   (realized {:.0} KB reclaimed/run over {} race(s))",
        first.driver.name(),
        driver_kib.mean,
        races.len(),
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>9} {:>12} {:>9}",
        "Shadow Policy", "Credit (KB)", "(sd)", "Regret (KB)", "(sd)"
    );
    for (shadow, credit, regret) in regret_table(races) {
        let _ = writeln!(
            out,
            "{:<18} {:>12.0} {:>9.0} {:>12.0} {:>9.0}",
            shadow.name(),
            credit.mean,
            credit.std_dev,
            regret.mean,
            regret.std_dev,
        );
    }
    out
}

/// Renders a per-partition occupancy table from
/// [`pgc_odb::Database::partition_profile`] output, with garbage
/// attribution from an oracle report when one is supplied — a diagnostic
/// view of where live data, unreclaimed garbage, and remembered pointers
/// sit.
pub fn format_partition_profile(
    profile: &[pgc_odb::PartitionProfile],
    oracle: Option<&pgc_odb::OracleReport>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>11} {:>8} {:>10} {:>9}",
        "part", "used KB", "free KB", "garbage KB", "objects", "remset in", "out objs"
    );
    for p in profile {
        let garbage = oracle
            .map(|r| format!("{:.0}", r.garbage_in(p.partition).as_kib_f64()))
            .unwrap_or_else(|| "-".into());
        let free = p.capacity.saturating_sub(p.used);
        let _ = writeln!(
            out,
            "{:>6} {:>10.0} {:>10.0} {:>11} {:>8} {:>10} {:>9}{}",
            p.partition.to_string(),
            p.used.as_kib_f64(),
            free.as_kib_f64(),
            garbage,
            p.objects,
            p.remembered_pointers,
            p.out_of_partition_objects,
            if p.is_empty_designated {
                "  (empty)"
            } else {
                ""
            },
        );
    }
    out
}

/// Renders the per-policy telemetry aggregates of a tapped comparison as a
/// human-readable table: activations per run, mean bytes reclaimed per
/// activation, the p50/p90 of collector page I/O per activation, and the
/// mean bus-event gap between consecutive activations. Policies whose rows
/// carry no telemetry (the comparison ran with telemetry off) are skipped;
/// an entirely untapped comparison renders to an empty string.
pub fn format_telemetry(cmp: &Comparison) -> String {
    let mut out = String::new();
    if cmp.rows.iter().all(|r| r.telemetry.is_none()) {
        return out;
    }
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>14} {:>11} {:>11} {:>12}",
        "Selection Policy", "Activ/run", "Reclaim KB/act", "GC IO p50", "GC IO p90", "Gap (events)"
    );
    for r in &cmp.rows {
        let Some(t) = &r.telemetry else { continue };
        let _ = writeln!(
            out,
            "{:<18} {:>10.1} {:>14.1} {:>11} {:>11} {:>12.0}",
            r.policy.name(),
            t.activations_per_run(),
            t.reclaimed_per_activation.mean() / 1024.0,
            t.gc_io_per_activation.quantile(0.5),
            t.gc_io_per_activation.quantile(0.9),
            t.activation_gap_events.mean(),
        );
    }
    out
}

/// Serializes a [`Comparison`] as CSV (one row per policy, one column per
/// aggregated metric mean/sd) — the machine-readable counterpart of the
/// formatted tables.
pub fn comparison_to_csv(cmp: &Comparison) -> String {
    let mut out = String::from(
        "policy,app_ios,app_ios_sd,gc_ios,gc_ios_sd,total_ios,max_storage_kb,partitions,         reclaimed_kb,actual_garbage_kb,fraction_pct,efficiency_kb_per_io,nepotism_kb,collections
",
    );
    for r in &cmp.rows {
        let _ = writeln!(
            out,
            "{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.2},{:.1},{:.1},{:.2},{:.3},{:.1},{:.1}",
            r.policy.name(),
            r.app_ios.mean,
            r.app_ios.std_dev,
            r.gc_ios.mean,
            r.gc_ios.std_dev,
            r.total_ios.mean,
            r.max_storage_kb.mean,
            r.partitions.mean,
            r.reclaimed_kb.mean,
            r.actual_garbage_kb.mean,
            r.fraction_pct.mean,
            r.efficiency_kb_per_io.mean,
            r.nepotism_kb.mean,
            r.collections.mean,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::run::RunConfig;
    use pgc_core::PolicyKind;

    fn tiny_comparison() -> Comparison {
        Experiment::new()
            .compare(
                &[
                    PolicyKind::NoCollection,
                    PolicyKind::UpdatedPointer,
                    PolicyKind::MostGarbage,
                ],
                &[1],
                |p, s| RunConfig::small().with_policy(p).with_seed(s),
            )
            .unwrap()
    }

    #[test]
    fn table2_lists_every_policy_and_normalizes_baseline() {
        let cmp = tiny_comparison();
        let t = format_table2(&cmp);
        assert!(t.contains("NoCollection"));
        assert!(t.contains("UpdatedPointer"));
        assert!(t.contains("MostGarbage"));
        // The baseline's Relative column is exactly 1.000.
        let baseline_line = t
            .lines()
            .find(|l| l.starts_with("MostGarbage"))
            .expect("baseline row present");
        assert!(
            baseline_line.trim_end().ends_with("1.000"),
            "{baseline_line}"
        );
    }

    #[test]
    fn table3_and_4_render() {
        let cmp = tiny_comparison();
        let t3 = format_table3(&cmp);
        assert!(t3.contains("# Partitions"));
        let t4 = format_table4(&cmp);
        assert!(t4.contains("Actual Garbage"));
        assert!(t4.contains("Eff KB/IO"));
    }

    #[test]
    fn table5_grid_has_connectivity_columns() {
        let cmp = tiny_comparison();
        let t = format_table5(&[(1.167, cmp.clone()), (1.005, cmp)]);
        assert!(t.contains("C = 1.167"));
        assert!(t.contains("C = 1.005"));
        assert!(t.contains("UpdatedPointer"));
    }

    #[test]
    fn comparison_csv_is_well_formed() {
        let cmp = tiny_comparison();
        let csv = comparison_to_csv(&cmp);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + cmp.rows.len());
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
        assert!(lines[1].starts_with("NoCollection,"));
    }

    #[test]
    fn partition_profile_renders() {
        use pgc_odb::Database;
        use pgc_types::{Bytes, DbConfig, SlotId};
        let mut db = Database::new(
            DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(8),
        )
        .unwrap();
        let r = db.create_root(Bytes(100), 2).unwrap();
        db.create_object(Bytes(100), 2, r, SlotId(0)).unwrap();
        let txt = format_partition_profile(&db.partition_profile(), None);
        assert!(txt.contains("(empty)"));
        assert!(txt.contains("P1"));
        assert!(txt.contains("objects"));
        // With an oracle report, garbage is attributed per partition.
        db.write_slot(r, SlotId(0), None).unwrap();
        let mut scratch = pgc_odb::oracle::OracleScratch::new();
        let report = pgc_odb::oracle::analyze_with(&db, &mut scratch);
        let txt = format_partition_profile(&db.partition_profile(), Some(&report));
        assert!(!txt.contains(" -"), "oracle column filled in: {txt}");
    }

    #[test]
    fn policy_race_matrix_renders() {
        use crate::shadow::run_race;
        let shadows = [PolicyKind::MostGarbage, PolicyKind::Random];
        let races: Vec<_> = (1..3u64)
            .map(|seed| {
                run_race(
                    &RunConfig::small()
                        .with_policy(PolicyKind::MostGarbage)
                        .with_seed(seed),
                    &shadows,
                )
                .unwrap()
            })
            .collect();
        let t = format_policy_race(&races);
        assert!(t.contains("Driver: MostGarbage"));
        assert!(t.contains("Random"));
        assert!(t.contains("Agree (%)"));
        // The driver shadowing itself agrees 100.0% with zero deviation.
        let self_row = t
            .lines()
            .find(|l| l.starts_with("MostGarbage"))
            .expect("self row");
        assert!(self_row.contains("100.0"), "{self_row}");
        assert!(format_policy_race(&[]).is_empty());
    }

    #[test]
    fn regret_table_renders() {
        use crate::shadow::run_race;
        let shadows = [PolicyKind::UpdatedPointer, PolicyKind::Random];
        let races: Vec<_> = (1..3u64)
            .map(|seed| {
                run_race(
                    &RunConfig::small()
                        .with_policy(PolicyKind::UpdatedPointer)
                        .with_seed(seed),
                    &shadows,
                )
                .unwrap()
            })
            .collect();
        let t = format_regret(&races);
        assert!(t.contains("Driver: UpdatedPointer"));
        assert!(t.contains("Credit (KB)"));
        assert!(t.contains("Regret (KB)"));
        // The driver shadowing itself has zero regret in every race.
        let self_row = t
            .lines()
            .find(|l| l.starts_with("UpdatedPointer"))
            .expect("self row");
        let cols: Vec<&str> = self_row.split_whitespace().collect();
        assert_eq!(cols[3], "0", "{self_row}");
        assert!(format_regret(&[]).is_empty());
    }

    #[test]
    fn telemetry_table_renders_only_when_tapped() {
        let plain = tiny_comparison();
        assert!(format_telemetry(&plain).is_empty(), "untapped is empty");
        let tapped = Experiment::new()
            .with_telemetry(pgc_telemetry::TelemetryLevel::Metrics)
            .compare(
                &[PolicyKind::UpdatedPointer, PolicyKind::MostGarbage],
                &[1, 2],
                |p, s| RunConfig::small().with_policy(p).with_seed(s),
            )
            .unwrap();
        let t = format_telemetry(&tapped);
        assert!(t.contains("Activ/run"));
        assert!(t.contains("UpdatedPointer"));
        assert!(t.contains("MostGarbage"));
    }

    #[test]
    fn figure6_grid_has_size_columns() {
        let cmp = tiny_comparison();
        let t = format_figure6(&[(4, cmp.clone()), (40, cmp)]);
        assert!(t.contains("4 MB"));
        assert!(t.contains("40 MB"));
    }
}
