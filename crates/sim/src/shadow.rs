//! Shadow-scoreboard policy races: many policies scored in one replay.
//!
//! The paper compares selection policies by running the same trace once per
//! policy. Because the collection trigger is "independent of the partition
//! choice", every such run fires at identical points in the event stream —
//! only the chosen victims differ. Shadow mode exploits that: one *driver*
//! policy actually makes the collection decisions, while the scoreboard of
//! every other honest policy rides the same [`pgc_odb::BarrierEvent`] bus
//! as a bystander and, at each trigger, records the partition it *would*
//! have picked.
//!
//! Up to the run's first divergence (the first activation where a shadow's
//! pick differs from the driver's victim), the shadow's picks are exactly
//! the picks its own independent run would make, because the two runs share
//! the entire event history. Past that point the shadow keeps scoring the
//! driver's timeline — a counterfactual its independent run never sees —
//! which is precisely what the per-collection agreement matrix measures:
//! how often would policy *B* have endorsed the decisions policy *A*
//! actually made?

use crate::run::{RunConfig, RunOutcome, Simulation};
use crate::summary::Summary;
use pgc_core::{build_policy, PolicyKind, SelectionPolicy};
use pgc_odb::{BarrierEvent, BarrierObserver, Database};
use pgc_telemetry::{ShadowPickNote, TelemetryLevel};
use pgc_types::{Bytes, PartitionId, Result};
use std::cell::RefCell;
use std::rc::Rc;

/// One shadow policy's pick at one trigger activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowPick {
    /// The shadow policy.
    pub policy: PolicyKind,
    /// The partition it would have collected (`None` = it declined).
    pub victim: Option<PartitionId>,
}

/// Everything recorded at one trigger activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceRecord {
    /// Activation number (1-based, the scheduler's trigger count).
    pub activation: u64,
    /// The partition the driver actually collected first at this
    /// activation (`None` = the driver declined, e.g. `NoCollection`).
    pub driver_victim: Option<PartitionId>,
    /// Every collection the driver performed this activation (victim and
    /// garbage bytes reclaimed), batch extras included — the realized
    /// outcomes that regret accounting scores picks against.
    pub driver_collections: Vec<(PartitionId, Bytes)>,
    /// Each shadow's counterfactual pick, in registration order.
    pub picks: Vec<ShadowPick>,
}

impl RaceRecord {
    /// The pick recorded for `policy`, if that shadow ran.
    pub fn pick_for(&self, policy: PolicyKind) -> Option<&ShadowPick> {
        self.picks.iter().find(|p| p.policy == policy)
    }
}

#[derive(Debug, Default)]
struct RaceLog {
    records: Vec<RaceRecord>,
}

/// A shadow scoreboard: one honest policy observing the driver's stream.
///
/// Its `on_event` feeds the wrapped policy exactly what the driver's policy
/// sees (including the driver's `CollectionCompleted` records, so its
/// scoreboard resets track the driver's collections, not its own). Its
/// `on_trigger` runs the policy's `select` against the pre-collection
/// database and appends the pick to the shared race log. It never mutates
/// the database and never influences the driver.
struct ShadowObserver {
    policy: Box<dyn SelectionPolicy>,
    log: Rc<RefCell<RaceLog>>,
    /// True for the first-registered shadow only: every observer sees
    /// every event, so exactly one of them logs the shared per-record
    /// collection outcomes.
    lead: bool,
}

impl BarrierObserver for ShadowObserver {
    fn on_event(&mut self, event: &BarrierEvent) {
        self.policy.on_event(event);
        let mut log = self.log.borrow_mut();
        match *event {
            // The first shadow to see the tick opens the record; the
            // rest find it already open.
            BarrierEvent::TriggerTick { activation }
                if log.records.last().map(|r| r.activation) != Some(activation) =>
            {
                log.records.push(RaceRecord {
                    activation,
                    driver_victim: None,
                    driver_collections: Vec::new(),
                    picks: Vec::new(),
                });
            }
            BarrierEvent::CollectionCompleted(outcome) => {
                // The first completion after the tick is the driver's pick
                // (later ones in the same activation are batch extras).
                if let Some(rec) = log.records.last_mut() {
                    if rec.driver_victim.is_none() {
                        rec.driver_victim = Some(outcome.victim);
                    }
                    if self.lead {
                        rec.driver_collections
                            .push((outcome.victim, outcome.garbage_bytes));
                    }
                }
            }
            _ => {}
        }
    }

    fn on_trigger(&mut self, db: &Database) {
        let victim = self.policy.select(db);
        let mut log = self.log.borrow_mut();
        if let Some(rec) = log.records.last_mut() {
            if rec.pick_for(self.policy.kind()).is_none() {
                rec.picks.push(ShadowPick {
                    policy: self.policy.kind(),
                    victim,
                });
            }
        }
    }
}

/// The result of one shadow-scoreboard race.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// The policy that made the actual collection decisions.
    pub driver: PolicyKind,
    /// Workload seed.
    pub seed: u64,
    /// The shadow policies, in registration order.
    pub shadows: Vec<PolicyKind>,
    /// One record per trigger activation.
    pub records: Vec<RaceRecord>,
    /// The driver run's ordinary outcome (identical to what
    /// `Simulation::builder(cfg).run()` would report without any shadows).
    pub outcome: RunOutcome,
}

impl RaceOutcome {
    /// `(agreements, decided)` for one shadow: over activations where the
    /// driver collected, how often did the shadow pick the same victim?
    pub fn agreement(&self, shadow: PolicyKind) -> (u64, u64) {
        let mut agreed = 0;
        let mut decided = 0;
        for rec in &self.records {
            let Some(driver_victim) = rec.driver_victim else {
                continue;
            };
            let Some(pick) = rec.pick_for(shadow) else {
                continue;
            };
            decided += 1;
            if pick.victim == Some(driver_victim) {
                agreed += 1;
            }
        }
        (agreed, decided)
    }

    /// Agreement as a fraction in `[0, 1]` (0 when nothing was decided).
    pub fn agreement_fraction(&self, shadow: PolicyKind) -> f64 {
        let (agreed, decided) = self.agreement(shadow);
        if decided == 0 {
            0.0
        } else {
            agreed as f64 / decided as f64
        }
    }

    /// Index into [`RaceOutcome::records`] of the first activation where
    /// the shadow's pick differs from the driver's victim (`None` = they
    /// agree on the entire run).
    pub fn first_divergence(&self, shadow: PolicyKind) -> Option<usize> {
        self.records.iter().position(|rec| {
            rec.pick_for(shadow)
                .map(|p| p.victim != rec.driver_victim)
                .unwrap_or(false)
        })
    }

    /// Garbage bytes the driver actually reclaimed over the run (batch
    /// extras included). Every collection realizes one of the driver's own
    /// picks, so this is the driver's cumulative credit under the same
    /// credit-once rule [`RaceOutcome::shadow_credit`] applies to shadows.
    pub fn driver_credit(&self) -> u64 {
        self.records
            .iter()
            .flat_map(|r| &r.driver_collections)
            .map(|&(_, bytes)| bytes.get())
            .sum()
    }

    /// Cumulative credit a shadow's would-be picks earned against the
    /// driver's realized collections — the scoring rule the `AdaptiveMeta`
    /// policy applies to its candidates, here applied retrospectively.
    ///
    /// Each activation the shadow's pick (recorded at trigger time, before
    /// any collection settles) joins its pending set; whenever the driver
    /// collects a partition with a pending pick, the shadow is credited
    /// that collection's garbage bytes once and all pending picks of that
    /// partition clear. Nominating a partition every activation earns no
    /// more than nominating it once.
    pub fn shadow_credit(&self, shadow: PolicyKind) -> u64 {
        let mut pending: Vec<PartitionId> = Vec::new();
        let mut credit = 0;
        for rec in &self.records {
            if let Some(victim) = rec.pick_for(shadow).and_then(|p| p.victim) {
                pending.push(victim);
            }
            for &(partition, bytes) in &rec.driver_collections {
                if pending.contains(&partition) {
                    credit += bytes.get();
                    pending.retain(|&p| p != partition);
                }
            }
        }
        credit
    }

    /// The driver's credit minus the shadow's: positive when the driver's
    /// realized picks out-earned the shadow's counterfactual ones,
    /// negative when the shadow kept nominating the partitions that turned
    /// out to hold the garbage before the driver got to them.
    pub fn regret(&self, shadow: PolicyKind) -> i64 {
        self.driver_credit() as i64 - self.shadow_credit(shadow) as i64
    }
}

/// Aggregates agreement across several races (typically one per seed):
/// `(shadow, agreement-% summary, mean records to first divergence)`.
///
/// Shadow order follows the first race; races missing a shadow simply
/// contribute no sample for it. A race with no divergence for a shadow
/// contributes its full record count to the divergence column.
pub fn agreement_table(races: &[RaceOutcome]) -> Vec<(PolicyKind, Summary, Summary)> {
    let Some(first) = races.first() else {
        return Vec::new();
    };
    first
        .shadows
        .iter()
        .map(|&shadow| {
            let pct: Vec<f64> = races
                .iter()
                .map(|r| 100.0 * r.agreement_fraction(shadow))
                .collect();
            let div: Vec<f64> = races
                .iter()
                .map(|r| r.first_divergence(shadow).unwrap_or(r.records.len()) as f64)
                .collect();
            (shadow, Summary::of(&pct), Summary::of(&div))
        })
        .collect()
}

/// Aggregates regret accounting across several races (typically one per
/// seed): `(shadow, credit-KiB summary, regret-KiB summary)`. Shadow order
/// follows the first race. The driver's own credit rides along as the
/// baseline the regret column is measured against.
pub fn regret_table(races: &[RaceOutcome]) -> Vec<(PolicyKind, Summary, Summary)> {
    let Some(first) = races.first() else {
        return Vec::new();
    };
    first
        .shadows
        .iter()
        .map(|&shadow| {
            let credit: Vec<f64> = races
                .iter()
                .map(|r| r.shadow_credit(shadow) as f64 / 1024.0)
                .collect();
            let regret: Vec<f64> = races
                .iter()
                .map(|r| r.regret(shadow) as f64 / 1024.0)
                .collect();
            (shadow, Summary::of(&credit), Summary::of(&regret))
        })
        .collect()
}

/// Runs the synthetic workload described by `cfg` once, with `cfg.policy`
/// driving collections and every policy in `shadows` racing as a shadow
/// scoreboard on the same event stream.
///
/// Shadows are bystanders: the driver's trigger points, victim choices,
/// I/O charges, and final [`RunOutcome`] are bit-identical with or without
/// them. Shadow `Random` instances use the run's derived
/// [`RunConfig::policy_seed`], so each replays exactly the stream its
/// independent run would draw.
pub fn run_race(cfg: &RunConfig, shadows: &[PolicyKind]) -> Result<RaceOutcome> {
    run_race_with_telemetry(cfg, shadows, TelemetryLevel::Off)
}

/// [`run_race`] with a telemetry tap on the same bus. Beyond the ordinary
/// [`RunOutcome::telemetry`] capture, each per-activation telemetry record
/// is annotated with every shadow's counterfactual pick
/// ([`pgc_telemetry::ActivationRecord::shadow_picks`]), so a JSONL export
/// carries the full race, not just the driver's decisions.
pub fn run_race_with_telemetry(
    cfg: &RunConfig,
    shadows: &[PolicyKind],
    level: TelemetryLevel,
) -> Result<RaceOutcome> {
    let log = Rc::new(RefCell::new(RaceLog::default()));
    let mut builder = Simulation::builder(cfg).telemetry(level);
    for (i, &kind) in shadows.iter().enumerate() {
        builder = builder.observer(Box::new(ShadowObserver {
            policy: build_policy(kind, cfg.policy_seed(), cfg.db.max_weight),
            log: Rc::clone(&log),
            lead: i == 0,
        }));
    }
    let mut outcome = builder.run()?;
    // The run consumed the replayer (and with it the collector + shadow
    // observers), so the log has exactly one strong reference left.
    let records = Rc::try_unwrap(log)
        .map(|cell| cell.into_inner().records)
        .unwrap_or_else(|rc| rc.borrow().records.clone());
    if let Some(snap) = outcome.telemetry.as_mut() {
        for rec in &mut snap.records {
            let Some(race_rec) = records.iter().find(|r| r.activation == rec.activation) else {
                continue;
            };
            rec.shadow_picks = race_rec
                .picks
                .iter()
                .map(|p| ShadowPickNote {
                    policy: p.policy.name().to_string(),
                    victim: p.victim,
                })
                .collect();
        }
    }
    Ok(RaceOutcome {
        driver: cfg.policy,
        seed: cfg.workload.seed,
        shadows: shadows.to_vec(),
        records,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SHADOWS: [PolicyKind; 5] = [
        PolicyKind::MutatedPartition,
        PolicyKind::Random,
        PolicyKind::WeightedPointer,
        PolicyKind::UpdatedPointer,
        PolicyKind::MostGarbage,
    ];

    #[test]
    fn shadows_never_perturb_the_driver() {
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::UpdatedPointer)
            .with_seed(11);
        let plain = Simulation::builder(&cfg).run().unwrap();
        let race = run_race(&cfg, &PAPER_SHADOWS).unwrap();
        assert_eq!(plain.totals, race.outcome.totals, "totals bit-identical");
        assert_eq!(
            plain.collections, race.outcome.collections,
            "victim sequence bit-identical"
        );
    }

    #[test]
    fn one_record_per_activation_with_all_picks() {
        let cfg = RunConfig::small().with_seed(12);
        let race = run_race(&cfg, &PAPER_SHADOWS).unwrap();
        assert!(!race.records.is_empty(), "trigger fired");
        assert_eq!(race.records.len() as u64, race.outcome.totals.collections);
        for (i, rec) in race.records.iter().enumerate() {
            assert_eq!(rec.activation, i as u64 + 1, "activations are dense");
            assert_eq!(rec.picks.len(), PAPER_SHADOWS.len());
            assert!(rec.driver_victim.is_some(), "honest driver always picks");
        }
    }

    #[test]
    fn driver_shadowing_itself_always_agrees() {
        // A deterministic policy racing against itself sees the same
        // events and the same database, so it must agree at every single
        // activation.
        for driver in [PolicyKind::UpdatedPointer, PolicyKind::MostGarbage] {
            let cfg = RunConfig::small().with_policy(driver).with_seed(13);
            let race = run_race(&cfg, &[driver]).unwrap();
            let (agreed, decided) = race.agreement(driver);
            assert!(decided > 0);
            assert_eq!(agreed, decided, "{driver:?} disagreed with itself");
            assert_eq!(race.first_divergence(driver), None);
        }
    }

    #[test]
    fn shadow_matches_independent_run_until_first_divergence() {
        // The headline equivalence: up to (and including) the first
        // activation where a shadow's pick differs from the driver's
        // victim, the shadow picks exactly what its own independent run
        // picks — because the trigger points are policy-independent and
        // the event history is shared until the victims differ.
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::MostGarbage)
            .with_seed(14);
        let race = run_race(&cfg, &PAPER_SHADOWS).unwrap();
        for &shadow in &PAPER_SHADOWS {
            let independent = Simulation::builder(&cfg.clone().with_policy(shadow))
                .run()
                .unwrap();
            let limit = race
                .first_divergence(shadow)
                .map(|i| i + 1)
                .unwrap_or(race.records.len())
                .min(independent.collections.len());
            assert!(limit > 0, "{shadow:?} never raced");
            for i in 0..limit {
                let pick = race.records[i].pick_for(shadow).unwrap().victim;
                assert_eq!(
                    pick,
                    Some(independent.collections[i].victim),
                    "{shadow:?} diverged from its independent run at activation {i} \
                     before diverging from the driver"
                );
            }
        }
    }

    #[test]
    fn self_shadow_has_zero_regret() {
        // With a batch of 1 every collection realizes the driver's pick,
        // and a deterministic policy shadowing itself picks the same
        // victims — so its credit equals the driver's exactly.
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::UpdatedPointer)
            .with_seed(18);
        let race = run_race(&cfg, &[PolicyKind::UpdatedPointer]).unwrap();
        assert!(race.driver_credit() > 0, "driver reclaimed something");
        assert_eq!(
            race.shadow_credit(PolicyKind::UpdatedPointer),
            race.driver_credit()
        );
        assert_eq!(race.regret(PolicyKind::UpdatedPointer), 0);
    }

    #[test]
    fn driver_collections_sum_to_run_totals() {
        let cfg = RunConfig::small().with_seed(19);
        let race = run_race(&cfg, &PAPER_SHADOWS).unwrap();
        assert_eq!(
            race.driver_credit(),
            race.outcome.totals.reclaimed_bytes.get(),
            "lead shadow logs every collection exactly once"
        );
        for rec in &race.records {
            assert_eq!(rec.driver_collections.len(), 1, "batch of 1");
            assert_eq!(rec.driver_collections[0].0, rec.driver_victim.unwrap());
        }
    }

    #[test]
    fn shadow_credit_is_bounded_by_driver_credit() {
        let cfg = RunConfig::small()
            .with_policy(PolicyKind::MostGarbage)
            .with_seed(20);
        let race = run_race(&cfg, &PAPER_SHADOWS).unwrap();
        for &shadow in &PAPER_SHADOWS {
            assert!(
                race.shadow_credit(shadow) <= race.driver_credit(),
                "{shadow:?} cannot out-earn the realized total"
            );
        }
        let table = regret_table(std::slice::from_ref(&race));
        assert_eq!(table.len(), PAPER_SHADOWS.len());
        assert!(regret_table(&[]).is_empty());
    }

    #[test]
    fn agreement_table_aggregates_across_seeds() {
        let races: Vec<RaceOutcome> = (15..17)
            .map(|seed| {
                run_race(
                    &RunConfig::small()
                        .with_policy(PolicyKind::MostGarbage)
                        .with_seed(seed),
                    &[PolicyKind::MostGarbage, PolicyKind::Random],
                )
                .unwrap()
            })
            .collect();
        let table = agreement_table(&races);
        assert_eq!(table.len(), 2);
        let (kind, pct, _div) = &table[0];
        assert_eq!(*kind, PolicyKind::MostGarbage);
        assert!((pct.mean - 100.0).abs() < 1e-9, "self-agreement is total");
        assert_eq!(pct.n, 2);
        assert!(agreement_table(&[]).is_empty());
    }
}
