//! One complete simulation run.
//!
//! [`Simulation::builder`] is the single entry point: it wires a
//! [`RunConfig`] to an event source — the synthetic workload by default, a
//! shared [`EncodedTrace`] via [`SimulationBuilder::trace`], or a recorded
//! event slice via [`SimulationBuilder::events`] — and drives one
//! [`Shard`] (database + collector + barrier bus + telemetry + sampling)
//! through it. A `Simulation` run is exactly the 1-shard special case of
//! the sharded runtime: the multi-tenant server hosts one [`Shard`] per
//! client stream and steps each through the same API, which is why
//! per-stream server results are bit-identical to dedicated runs.
//!
//! With [`RunConfig::with_durability`] (or [`SimulationBuilder::durability`])
//! the shard persists as it runs — write-ahead change log plus optional
//! per-partition snapshots — and [`crate::durable::recover`] rebuilds a
//! bit-identical outcome from the data directory alone.

use crate::metrics::{RunTotals, TimeSeries};
use crate::replay::Replayer;
use crate::shard::Shard;
use pgc_core::{build_policy_with, Collector, DeriveStats, PolicyKind, Trigger};
use pgc_durable::{DurabilityConfig, StorageStats};
use pgc_odb::{BarrierObserver, CollectionOutcome, Database, DbStats};
use pgc_telemetry::{TelemetryLevel, TelemetrySnapshot, TriggerReason};
use pgc_types::{Bytes, DbConfig, Parallelism, PlacementPolicy, Result};
use pgc_workload::generator::GenStats;
use pgc_workload::{
    EncodedTrace, Event, EventBlock, SyntheticWorkload, WorkloadParams, BLOCK_EVENTS,
};

/// Everything needed to run one simulation.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The partition selection policy under test.
    pub policy: PolicyKind,
    /// Database geometry and trigger configuration.
    pub db: DbConfig,
    /// Workload parameters (the seed lives here).
    pub workload: WorkloadParams,
    /// Take a time-series sample every this many events (`None` = no
    /// series; sampling runs the oracle, so it has a simulation-time cost).
    pub sample_every: Option<u64>,
    /// Override the GC trigger (`None` = the paper's overwrite-count
    /// trigger at `db.gc_overwrite_threshold`).
    pub trigger: Option<Trigger>,
    /// Partitions collected per activation (the paper uses 1).
    pub collect_batch: u32,
    /// Intra-run execution mode: `Serial` (default) or `Deterministic(n)`,
    /// which fans the oracle's reachability pass, collection planning, and
    /// trace decode over `n` threads while staying bit-identical to
    /// `Serial` — same victims, same totals, same telemetry.
    pub parallelism: Parallelism,
    /// Durable storage backend: `Off` (default, the historical in-memory
    /// behavior), `LogOnly`, or `SnapshotAndLog` with a data directory.
    /// Persistence is a pure bystander — it never changes any result.
    pub durability: DurabilityConfig,
}

impl RunConfig {
    /// The paper's headline configuration (Tables 2–4): 48-page (384 KB)
    /// partitions with an equal-size buffer, collection every 200 pointer
    /// overwrites, ~11 MB allocated of which ~5 MB stays live.
    pub fn paper(policy: PolicyKind, seed: u64) -> Self {
        Self {
            policy,
            db: DbConfig::default(),
            workload: WorkloadParams::default().with_seed(seed),
            sample_every: None,
            trigger: None,
            collect_batch: 1,
            parallelism: Parallelism::Serial,
            durability: DurabilityConfig::off(),
        }
    }

    /// A milliseconds-scale configuration for tests, examples, and
    /// doctests: 16 KB partitions of 1 KB pages, trigger every 50
    /// overwrites, ~0.5 MB allocated.
    pub fn small() -> Self {
        Self {
            policy: PolicyKind::UpdatedPointer,
            db: DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(16)
                .with_gc_overwrite_threshold(50),
            workload: WorkloadParams::small(),
            sample_every: None,
            trigger: None,
            collect_batch: 1,
            parallelism: Parallelism::Serial,
            durability: DurabilityConfig::off(),
        }
    }

    /// Replaces the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        self
    }

    /// Enables time-series sampling at the given event interval.
    #[must_use]
    pub fn with_sampling(mut self, every_events: u64) -> Self {
        self.sample_every = Some(every_events.max(1));
        self
    }

    /// Overrides the GC trigger.
    #[must_use]
    pub fn with_trigger(mut self, trigger: Trigger) -> Self {
        self.trigger = Some(trigger);
        self
    }

    /// Sets the partitions collected per activation.
    #[must_use]
    pub fn with_collect_batch(mut self, batch: u32) -> Self {
        self.collect_batch = batch.max(1);
        self
    }

    /// Sets the intra-run execution mode.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the durable storage backend (mode + data directory). The
    /// persisted run recovers bit-identically via
    /// [`crate::durable::recover`].
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Replaces the whole database configuration.
    #[must_use]
    pub fn with_db(mut self, db: DbConfig) -> Self {
        self.db = db;
        self
    }

    /// Replaces the whole workload parameter set (the seed lives there).
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadParams) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the page size in bytes.
    #[must_use]
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.db = self.db.with_page_size(page_size);
        self
    }

    /// Sets pages per partition (also sizes the buffer pool to one
    /// partition, the paper's 1:1 ratio — override with
    /// [`RunConfig::with_buffer_pages`] afterwards).
    #[must_use]
    pub fn with_partition_pages(mut self, pages: u64) -> Self {
        self.db = self.db.with_partition_pages(pages);
        self
    }

    /// Sets the buffer-pool size in pages.
    #[must_use]
    pub fn with_buffer_pages(mut self, pages: u64) -> Self {
        self.db = self.db.with_buffer_pages(pages);
        self
    }

    /// Sets the overwrite count that arms the paper's default GC trigger.
    #[must_use]
    pub fn with_gc_overwrite_threshold(mut self, overwrites: u64) -> Self {
        self.db = self.db.with_gc_overwrite_threshold(overwrites);
        self
    }

    /// Sets the maximum root-distance weight (parameterizes
    /// `WeightedPointer`).
    #[must_use]
    pub fn with_max_weight(mut self, max_weight: u8) -> Self {
        self.db = self.db.with_max_weight(max_weight);
        self
    }

    /// Sets the object placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.db = self.db.with_placement(placement);
        self
    }

    /// Sets the client cache size in pages.
    #[must_use]
    pub fn with_client_cache_pages(mut self, pages: u64) -> Self {
        self.db = self.db.with_client_cache_pages(pages);
        self
    }

    /// Sets how much the workload allocates in total (the heap-growth
    /// knob behind the paper's Figure 6 size scaling).
    #[must_use]
    pub fn with_heap_growth(mut self, target_allocated: Bytes) -> Self {
        self.workload = self.workload.with_target_allocated(target_allocated);
        self
    }

    /// Sets the fraction of extra dense (non-tree) edges (the Table 5
    /// connectivity knob).
    #[must_use]
    pub fn with_dense_edge_fraction(mut self, fraction: f64) -> Self {
        self.workload = self.workload.with_dense_edge_fraction(fraction);
        self
    }

    /// Sets subtree deletions per workload round.
    #[must_use]
    pub fn with_deletions_per_round(mut self, n: u32) -> Self {
        self.workload = self.workload.with_deletions_per_round(n);
        self
    }

    /// Sets traversals per workload round.
    #[must_use]
    pub fn with_traversals_per_round(mut self, n: u32) -> Self {
        self.workload = self.workload.with_traversals_per_round(n);
        self
    }

    /// The seed every policy instance for this run derives from. The
    /// Random policy's stream is decorrelated from the workload's by
    /// hashing, but still derived from the run seed for reproducibility.
    /// Shadow scoreboards use the same derivation so a shadow `Random`
    /// replays the exact choices its independent run would make.
    pub fn policy_seed(&self) -> u64 {
        self.workload.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
    }

    /// The effective trigger (explicit override or the paper's
    /// overwrite-count default).
    pub fn effective_trigger(&self) -> Trigger {
        self.trigger
            .unwrap_or(Trigger::OverwriteCount(self.db.gc_overwrite_threshold))
    }

    /// The telemetry-side description of [`RunConfig::effective_trigger`].
    pub fn trigger_reason(&self) -> TriggerReason {
        match self.effective_trigger() {
            Trigger::OverwriteCount(n) => TriggerReason::OverwriteCount(n),
            Trigger::AllocationBytes(b) => TriggerReason::AllocationBytes(b.get()),
            Trigger::PartitionGrowth => TriggerReason::PartitionGrowth,
        }
    }

    pub(crate) fn build_replayer(&self) -> Result<Replayer> {
        let db = Database::new(self.db.clone())?;
        let collector = Collector::with_trigger(
            build_policy_with(
                self.policy,
                self.policy_seed(),
                self.db.max_weight,
                self.parallelism,
            ),
            self.effective_trigger(),
        )
        .with_batch(self.collect_batch)
        .with_parallelism(self.parallelism);
        Ok(Replayer::new(db, collector))
    }
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Policy that ran.
    pub policy: PolicyKind,
    /// Workload seed.
    pub seed: u64,
    /// Aggregate metrics (the table numbers).
    pub totals: RunTotals,
    /// Sampled curves (empty unless sampling was enabled).
    pub series: TimeSeries,
    /// Semantic database counters.
    pub db_stats: DbStats,
    /// Workload generator counters (zeroed for trace replays).
    pub gen_stats: GenStats,
    /// Every collection the run performed, in order. Comparable across
    /// runs: two runs agree on a prefix exactly when their policies picked
    /// the same victims at the same trigger points.
    pub collections: Vec<CollectionOutcome>,
    /// Telemetry captured by the run (`None` unless the run was built
    /// with [`SimulationBuilder::telemetry`] above `Off`).
    pub telemetry: Option<TelemetrySnapshot>,
    /// Recompute counters from the driving policy's derive engine (`None`
    /// when the policy keeps no derived state, e.g. `Random`). Also
    /// mirrored onto [`TelemetrySnapshot::derive`] when telemetry is on.
    pub derive: Option<DeriveStats>,
    /// Durable-storage counters (`None` unless the run persisted). Also
    /// mirrored onto [`TelemetrySnapshot::storage`] when telemetry is on.
    pub storage: Option<StorageStats>,
}

/// Entry points for running simulations.
pub struct Simulation;

impl Simulation {
    /// Starts building a run of `cfg`. The default source is the synthetic
    /// workload described by `cfg.workload`.
    ///
    /// ```
    /// use pgc_sim::{RunConfig, Simulation};
    ///
    /// let cfg = RunConfig::small().with_seed(7);
    /// let out = Simulation::builder(&cfg).run().unwrap();
    /// assert!(out.totals.collections > 0);
    /// ```
    pub fn builder(cfg: &RunConfig) -> SimulationBuilder<'_> {
        SimulationBuilder {
            cfg,
            source: Source::Synthetic,
            observers: Vec::new(),
            telemetry: TelemetryLevel::Off,
            parallelism: None,
            durability: None,
        }
    }
}

enum Source<'a> {
    Synthetic,
    Encoded(&'a EncodedTrace),
    Events(&'a [Event]),
}

/// A configured-but-not-yet-run simulation: pick an event source, attach
/// bus observers, telemetry, and durability, then [`SimulationBuilder::run`].
pub struct SimulationBuilder<'a> {
    cfg: &'a RunConfig,
    source: Source<'a>,
    observers: Vec<Box<dyn BarrierObserver>>,
    telemetry: TelemetryLevel,
    parallelism: Option<Parallelism>,
    durability: Option<DurabilityConfig>,
}

impl<'a> SimulationBuilder<'a> {
    /// Replays the shared encoded trace instead of generating the
    /// workload. Events decode on the fly from the trace's contiguous
    /// buffer (no intermediate `Vec<Event>`), and the recorded generator
    /// counters stand in for a live generator's, so the outcome — totals,
    /// victim sequence, statistics — is bit-identical to the synthetic
    /// source on the parameters the trace was recorded from (pinned by
    /// `tests/encoded_equivalence.rs`).
    #[must_use]
    pub fn trace(mut self, trace: &'a EncodedTrace) -> Self {
        self.source = Source::Encoded(trace);
        self
    }

    /// Replays a recorded event slice instead of generating the workload
    /// (the configured workload parameters are ignored except for the
    /// seed, which labels the run). Generator counters are zeroed.
    #[must_use]
    pub fn events(mut self, events: &'a [Event]) -> Self {
        self.source = Source::Events(events);
        self
    }

    /// Registers a bystander observer on the collector's barrier bus. It
    /// sees every event the driving policy sees plus the per-activation
    /// `on_trigger` callback, and cannot perturb the run.
    #[must_use]
    pub fn observer(mut self, observer: Box<dyn BarrierObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Sets the telemetry level. Anything above
    /// [`TelemetryLevel::Off`] registers a recording tap on the bus and
    /// returns the captured [`TelemetrySnapshot`] on
    /// [`RunOutcome::telemetry`]; `Off` (the default) registers nothing —
    /// the disabled path is the exact code path of an untapped run.
    #[must_use]
    pub fn telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// Overrides the configuration's intra-run execution mode for this run.
    /// `Deterministic(n)` is pinned bit-identical to `Serial`: the same
    /// victims, totals, and telemetry, computed on `n` threads.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Overrides the configuration's durable storage backend for this run
    /// (mode + data directory). Persistence is a bystander: the outcome is
    /// bit-identical to an in-memory run, and recoverable from the data
    /// directory via [`crate::durable::recover`].
    #[must_use]
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Runs the simulation to completion: builds one [`Shard`], streams
    /// the configured source into it, and finishes it.
    pub fn run(self) -> Result<RunOutcome> {
        let cfg_override;
        let cfg = if self.parallelism.is_some() || self.durability.is_some() {
            let mut cfg = self.cfg.clone();
            if let Some(p) = self.parallelism {
                cfg = cfg.with_parallelism(p);
            }
            if let Some(d) = self.durability {
                cfg = cfg.with_durability(d);
            }
            cfg_override = cfg;
            &cfg_override
        } else {
            self.cfg
        };
        let mut shard = Shard::new(cfg)?;
        // User observers register before the telemetry tap, so the bus
        // order (and thus every observer's view) matches the pre-shard
        // builder exactly.
        for obs in self.observers {
            shard.add_observer(obs);
        }
        shard.enable_telemetry(self.telemetry);
        let gen_stats = match self.source {
            Source::Synthetic => {
                let mut generator = SyntheticWorkload::new(cfg.workload.clone())?;
                for event in generator.by_ref() {
                    shard.step(&event)?;
                }
                generator.stats()
            }
            Source::Encoded(trace) => {
                pipeline_blocks(trace, cfg.parallelism, |block| shard.step_block(block))?;
                trace.stats()
            }
            Source::Events(events) => {
                shard.step_batch(events)?;
                GenStats::default()
            }
        };
        shard.finish(gen_stats)
    }
}

/// Streams an encoded trace's decoded blocks into `apply`, in stream
/// order, with batched block decode.
///
/// Under [`Parallelism::Serial`] (or one worker) decode and apply
/// alternate on the calling thread; under [`Parallelism::Deterministic`] a
/// scoped decode-ahead thread fills a small ring of recycled
/// [`EventBlock`]s while the calling thread applies them, hiding decode
/// latency behind apply work. Blocks arrive in stream order either way and
/// `apply` always runs on the calling thread — the two modes are
/// bit-identical.
///
/// The synthetic source is *not* pipelined: the generator mutates its
/// mirror as it emits, so its event stream cannot be produced ahead of the
/// apply loop without recording it first (which is exactly what
/// [`EncodedTrace::record`] is for).
fn pipeline_blocks(
    trace: &EncodedTrace,
    parallelism: Parallelism,
    mut apply: impl FnMut(&EventBlock) -> Result<()>,
) -> Result<()> {
    if !parallelism.is_parallel() {
        let mut cursor = trace.cursor();
        let mut block = EventBlock::with_capacity(BLOCK_EVENTS);
        while cursor.next_block(&mut block)? > 0 {
            apply(&block)?;
        }
        return Ok(());
    }
    // Decode-ahead pipeline: `ring` blocks in flight plus one in each hand.
    const PIPELINE_DEPTH: usize = 4;
    use std::sync::mpsc;
    std::thread::scope(|scope| -> Result<()> {
        let (full_tx, full_rx) = mpsc::sync_channel::<EventBlock>(PIPELINE_DEPTH);
        let (free_tx, free_rx) = mpsc::channel::<EventBlock>();
        for _ in 0..PIPELINE_DEPTH + 2 {
            free_tx
                .send(EventBlock::with_capacity(BLOCK_EVENTS))
                .expect("receiver alive");
        }
        let decoder = scope.spawn(move || -> Result<()> {
            let mut cursor = trace.cursor();
            // Both exits on channel closure mean the applier bailed (on an
            // apply error); just stop — the applier owns the error.
            while let Ok(mut block) = free_rx.recv() {
                if cursor.next_block(&mut block)? == 0 {
                    break;
                }
                if full_tx.send(block).is_err() {
                    break;
                }
            }
            Ok(())
        });
        let mut applied = Ok(());
        for block in full_rx.iter() {
            if let Err(e) = apply(&block) {
                applied = Err(e);
                break;
            }
            let _ = free_tx.send(block);
        }
        drop(free_tx);
        let decoded = decoder.join().expect("decode thread panicked");
        applied.and(decoded)
    })
}

/// Drives `replayer` through `trace` using the batched struct-of-arrays
/// decode path — pipelined on a decode-ahead thread when `parallelism` is
/// [`Parallelism::Deterministic`] with two or more workers.
///
/// This is the hot-path entry the perf harness times; [`Simulation`] runs
/// the same loop internally for encoded sources, plus sampling.
pub fn drive_encoded(
    replayer: &mut Replayer,
    trace: &EncodedTrace,
    parallelism: Parallelism,
) -> Result<()> {
    pipeline_blocks(trace, parallelism, |block| {
        replayer.apply_block(block, 0, block.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::Bytes;

    fn run(cfg: &RunConfig) -> RunOutcome {
        Simulation::builder(cfg).run().unwrap()
    }

    #[test]
    fn small_run_produces_sane_totals() {
        let cfg = RunConfig::small().with_seed(1);
        let out = run(&cfg);
        assert!(out.totals.events > 5_000);
        assert!(out.totals.app_ios > 0);
        assert!(out.totals.collections > 0);
        assert!(out.totals.reclaimed_bytes > Bytes::ZERO);
        assert!(out.totals.final_live_bytes > Bytes::ZERO);
        assert!(out.totals.max_footprint >= out.totals.final_live_bytes);
        assert_eq!(out.seed, 1);
        assert_eq!(out.policy, PolicyKind::UpdatedPointer);
        assert!(out.telemetry.is_none(), "telemetry defaults to off");
    }

    #[test]
    fn no_collection_never_collects_and_uses_most_space() {
        let nc = run(&RunConfig::small().with_policy(PolicyKind::NoCollection));
        let up = run(&RunConfig::small().with_policy(PolicyKind::UpdatedPointer));
        assert_eq!(nc.totals.collections, 0);
        assert_eq!(nc.totals.gc_ios, 0);
        assert_eq!(nc.totals.reclaimed_bytes, Bytes::ZERO);
        assert!(
            nc.totals.max_footprint >= up.totals.max_footprint,
            "collection must not increase the footprint: {} vs {}",
            nc.totals.max_footprint,
            up.totals.max_footprint
        );
    }

    #[test]
    fn sampling_produces_a_chronological_series() {
        let cfg = RunConfig::small().with_seed(2).with_sampling(5_000);
        let out = run(&cfg);
        assert!(out.series.points().len() >= 2);
        let mut prev = 0;
        for p in out.series.points() {
            assert!(p.events >= prev);
            prev = p.events;
            assert!(p.footprint >= p.resident_bytes);
        }
    }

    #[test]
    fn collection_log_matches_totals() {
        let out = run(&RunConfig::small().with_seed(7));
        assert_eq!(out.collections.len() as u64, out.totals.collections);
    }

    #[test]
    fn identical_configs_are_deterministic() {
        let cfg = RunConfig::small().with_seed(3);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.totals, b.totals);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&RunConfig::small().with_seed(4));
        let b = run(&RunConfig::small().with_seed(5));
        assert_ne!(a.totals, b.totals);
    }

    #[test]
    fn encoded_replay_matches_live_run_including_series() {
        let cfg = RunConfig::small().with_seed(6).with_sampling(5_000);
        let live = run(&cfg);
        let trace = EncodedTrace::record(cfg.workload.clone()).unwrap();
        let replayed = Simulation::builder(&cfg).trace(&trace).run().unwrap();
        assert_eq!(live.totals, replayed.totals);
        assert_eq!(live.gen_stats, replayed.gen_stats, "header stats stand in");
        assert_eq!(live.collections, replayed.collections, "victim sequences");
        assert_eq!(live.db_stats, replayed.db_stats);
        assert_eq!(live.series.points(), replayed.series.points());
    }

    #[test]
    fn trace_replay_matches_live_run() {
        let cfg = RunConfig::small().with_seed(6);
        let live = run(&cfg);
        let events: Vec<Event> = SyntheticWorkload::new(cfg.workload.clone())
            .unwrap()
            .collect();
        let replayed = Simulation::builder(&cfg).events(&events).run().unwrap();
        assert_eq!(live.totals, replayed.totals);
    }

    #[test]
    fn telemetry_snapshot_rides_the_outcome() {
        let cfg = RunConfig::small().with_seed(8);
        let out = Simulation::builder(&cfg)
            .telemetry(TelemetryLevel::Full)
            .run()
            .unwrap();
        let snap = out.telemetry.expect("telemetry requested");
        assert_eq!(snap.counters.activations, out.totals.collections);
        assert_eq!(snap.records.len() as u64, out.totals.collections);
        assert_eq!(
            snap.trigger,
            TriggerReason::OverwriteCount(50),
            "small() triggers every 50 overwrites"
        );
        for (rec, outcome) in snap.records.iter().zip(&out.collections) {
            assert_eq!(rec.victim, Some(outcome.victim), "records mirror victims");
            assert_eq!(rec.gc_reads, outcome.gc_reads);
            assert_eq!(rec.gc_writes, outcome.gc_writes);
            assert!(rec.victim_score.is_some(), "scoreboard policy has a score");
        }
        let total_app: u64 = snap.records.iter().map(|r| r.app_ios_delta).sum();
        assert!(total_app <= out.totals.app_ios);
    }

    #[test]
    fn derive_stats_ride_the_outcome_for_scoreboard_policies() {
        let out = run(&RunConfig::small().with_seed(11));
        let stats = out.derive.expect("UpdatedPointer keeps derived state");
        assert!(stats.selections() >= out.totals.collections);
        assert!(stats.revision > 0, "events advanced the input revision");
        let random = run(&RunConfig::small()
            .with_seed(11)
            .with_policy(PolicyKind::Random));
        assert!(random.derive.is_none(), "Random keeps no derived state");
    }

    #[test]
    fn derive_stats_mirror_onto_the_telemetry_snapshot() {
        let cfg = RunConfig::small().with_seed(12);
        let out = Simulation::builder(&cfg)
            .telemetry(TelemetryLevel::Metrics)
            .run()
            .unwrap();
        let stats = out.derive.unwrap();
        let mirrored = out.telemetry.unwrap().derive.unwrap();
        assert_eq!(mirrored.hits, stats.hits);
        assert_eq!(mirrored.partial, stats.partial);
        assert_eq!(mirrored.full, stats.full);
        assert_eq!(mirrored.revision, stats.revision);
    }

    #[test]
    fn exhaustive_config_builders_cover_every_knob() {
        let cfg = RunConfig::small()
            .with_page_size(2048)
            .with_partition_pages(8)
            .with_buffer_pages(32)
            .with_gc_overwrite_threshold(75)
            .with_max_weight(8)
            .with_placement(PlacementPolicy::Spread)
            .with_client_cache_pages(4)
            .with_heap_growth(Bytes::from_kib(256))
            .with_dense_edge_fraction(0.01)
            .with_deletions_per_round(3)
            .with_traversals_per_round(2);
        assert_eq!(cfg.db.page_size, 2048);
        assert_eq!(cfg.db.partition_pages, 8);
        assert_eq!(cfg.db.buffer_pages, 32);
        assert_eq!(cfg.db.gc_overwrite_threshold, 75);
        assert_eq!(cfg.db.max_weight, 8);
        assert_eq!(cfg.db.placement, PlacementPolicy::Spread);
        assert_eq!(cfg.db.client_cache_pages, Some(4));
        assert_eq!(cfg.workload.target_allocated, Bytes::from_kib(256));
        assert_eq!(cfg.workload.dense_edge_fraction, 0.01);
        assert_eq!(cfg.workload.deletions_per_round, 3);
        assert_eq!(cfg.workload.traversals_per_round, 2);
        let out = run(&cfg.with_seed(9));
        assert!(out.totals.events > 0, "built config actually runs");
    }
}

#[cfg(test)]
mod trigger_tests {
    use super::*;
    use pgc_core::Trigger;
    use pgc_types::Bytes;

    fn run(cfg: &RunConfig) -> RunOutcome {
        Simulation::builder(cfg).run().unwrap()
    }

    #[test]
    fn batch_collection_reduces_activations_not_work() {
        let single = run(&RunConfig::small().with_seed(21));
        let batched = run(&RunConfig::small().with_seed(21).with_collect_batch(3));
        // Same trigger points, three collections per activation.
        assert!(batched.totals.collections > single.totals.collections);
        assert!(batched.totals.reclaimed_bytes >= single.totals.reclaimed_bytes);
    }

    #[test]
    fn allocation_trigger_collects_even_with_no_overwrite_pressure() {
        let mut cfg = RunConfig::small().with_seed(22);
        cfg.workload.deletions_per_round = 0; // no overwrites at all
        let overwrite_based = run(&cfg.clone());
        assert_eq!(overwrite_based.totals.collections, 0);
        let alloc_based = run(&cfg.with_trigger(Trigger::AllocationBytes(Bytes::from_kib(4))));
        assert!(alloc_based.totals.collections > 0);
    }

    #[test]
    fn allocation_trigger_collections_invalidate_partially() {
        // A collection only forces a full rescan for queries whose cached
        // winner was the partition just collected. AdaptiveMeta races five
        // candidate scoreboards, and most of their winners survive any
        // given collection — so under a batched allocation trigger their
        // re-selections must ride the derive engine's partial path instead
        // of voiding the memo (the old behavior full-rescanned every query
        // once per activation).
        let cfg = RunConfig::small()
            .with_seed(22)
            .with_policy(PolicyKind::AdaptiveMeta)
            .with_trigger(Trigger::AllocationBytes(Bytes::from_kib(4)))
            .with_collect_batch(2);
        let out = run(&cfg);
        assert!(out.totals.collections > 1);
        let stats = out.derive.expect("AdaptiveMeta keeps derived state");
        assert!(
            stats.partial > 0,
            "batched allocation-trigger collections must invalidate partially: {stats:?}"
        );
        assert!(
            stats.full < stats.selections(),
            "not every selection may full-rescan: {stats:?}"
        );
    }

    #[test]
    fn growth_trigger_collects_on_space_pressure() {
        let cfg = RunConfig::small()
            .with_seed(23)
            .with_trigger(Trigger::PartitionGrowth);
        let out = run(&cfg);
        assert!(out.totals.collections > 0);
        // Growth-triggered collection bounds the footprint by construction.
        assert!(out.totals.max_footprint >= out.totals.final_live_bytes);
    }
}
