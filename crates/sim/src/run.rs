//! One complete simulation run.
//!
//! [`Simulation::run`] wires the pieces together: a synthetic workload (or
//! a recorded trace via [`Simulation::run_trace`]) streams events into a
//! [`Replayer`] holding a [`Database`] and a [`Collector`]; time-series
//! samples are taken every `sample_every` events; and the final state is
//! condensed into [`RunTotals`] (with one last oracle pass for the
//! live/garbage split).

use crate::metrics::{RunTotals, SamplePoint, TimeSeries};
use crate::replay::Replayer;
use pgc_core::{build_policy, Collector, PolicyKind, Trigger};
use pgc_odb::oracle::OracleScratch;
use pgc_odb::{oracle, CollectionOutcome, Database, DbStats};
use pgc_types::{DbConfig, Result};
use pgc_workload::generator::GenStats;
use pgc_workload::{EncodedTrace, Event, SyntheticWorkload, WorkloadParams};

/// Everything needed to run one simulation.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The partition selection policy under test.
    pub policy: PolicyKind,
    /// Database geometry and trigger configuration.
    pub db: DbConfig,
    /// Workload parameters (the seed lives here).
    pub workload: WorkloadParams,
    /// Take a time-series sample every this many events (`None` = no
    /// series; sampling runs the oracle, so it has a simulation-time cost).
    pub sample_every: Option<u64>,
    /// Override the GC trigger (`None` = the paper's overwrite-count
    /// trigger at `db.gc_overwrite_threshold`).
    pub trigger: Option<Trigger>,
    /// Partitions collected per activation (the paper uses 1).
    pub collect_batch: u32,
}

impl RunConfig {
    /// The paper's headline configuration (Tables 2–4): 48-page (384 KB)
    /// partitions with an equal-size buffer, collection every 200 pointer
    /// overwrites, ~11 MB allocated of which ~5 MB stays live.
    pub fn paper(policy: PolicyKind, seed: u64) -> Self {
        Self {
            policy,
            db: DbConfig::default(),
            workload: WorkloadParams::default().with_seed(seed),
            sample_every: None,
            trigger: None,
            collect_batch: 1,
        }
    }

    /// A milliseconds-scale configuration for tests, examples, and
    /// doctests: 16 KB partitions of 1 KB pages, trigger every 50
    /// overwrites, ~0.5 MB allocated.
    pub fn small() -> Self {
        Self {
            policy: PolicyKind::UpdatedPointer,
            db: DbConfig::default()
                .with_page_size(1024)
                .with_partition_pages(16)
                .with_gc_overwrite_threshold(50),
            workload: WorkloadParams::small(),
            sample_every: None,
            trigger: None,
            collect_batch: 1,
        }
    }

    /// Replaces the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        self
    }

    /// Enables time-series sampling at the given event interval.
    #[must_use]
    pub fn with_sampling(mut self, every_events: u64) -> Self {
        self.sample_every = Some(every_events.max(1));
        self
    }

    /// Overrides the GC trigger.
    #[must_use]
    pub fn with_trigger(mut self, trigger: Trigger) -> Self {
        self.trigger = Some(trigger);
        self
    }

    /// Sets the partitions collected per activation.
    #[must_use]
    pub fn with_collect_batch(mut self, batch: u32) -> Self {
        self.collect_batch = batch.max(1);
        self
    }

    /// The seed every policy instance for this run derives from. The
    /// Random policy's stream is decorrelated from the workload's by
    /// hashing, but still derived from the run seed for reproducibility.
    /// Shadow scoreboards use the same derivation so a shadow `Random`
    /// replays the exact choices its independent run would make.
    pub fn policy_seed(&self) -> u64 {
        self.workload.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
    }

    /// The effective trigger (explicit override or the paper's
    /// overwrite-count default).
    pub fn effective_trigger(&self) -> Trigger {
        self.trigger
            .unwrap_or(Trigger::OverwriteCount(self.db.gc_overwrite_threshold))
    }

    pub(crate) fn build_replayer(&self) -> Result<Replayer> {
        let db = Database::new(self.db.clone())?;
        let collector = Collector::with_trigger(
            build_policy(self.policy, self.policy_seed(), self.db.max_weight),
            self.effective_trigger(),
        )
        .with_batch(self.collect_batch);
        Ok(Replayer::new(db, collector))
    }
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Policy that ran.
    pub policy: PolicyKind,
    /// Workload seed.
    pub seed: u64,
    /// Aggregate metrics (the table numbers).
    pub totals: RunTotals,
    /// Sampled curves (empty unless sampling was enabled).
    pub series: TimeSeries,
    /// Semantic database counters.
    pub db_stats: DbStats,
    /// Workload generator counters (zeroed for trace replays).
    pub gen_stats: GenStats,
    /// Every collection the run performed, in order. Comparable across
    /// runs: two runs agree on a prefix exactly when their policies picked
    /// the same victims at the same trigger points.
    pub collections: Vec<CollectionOutcome>,
}

/// Entry points for running simulations.
pub struct Simulation;

impl Simulation {
    /// Runs the synthetic workload described by `cfg`.
    pub fn run(cfg: &RunConfig) -> Result<RunOutcome> {
        let mut generator = SyntheticWorkload::new(cfg.workload.clone())?;
        let mut replayer = cfg.build_replayer()?;
        let mut series = TimeSeries::new();
        // One scratch per run: every sampling/final oracle pass reuses it.
        let mut scratch = OracleScratch::new();
        let sample_every = cfg.sample_every.unwrap_or(u64::MAX);
        let mut next_sample = sample_every;

        for event in generator.by_ref() {
            replayer.apply(&event)?;
            if replayer.events_applied() >= next_sample {
                take_sample(&mut series, &replayer, &mut scratch);
                next_sample += sample_every;
            }
        }
        if cfg.sample_every.is_some() {
            take_sample(&mut series, &replayer, &mut scratch);
        }

        let gen_stats = generator.stats();
        Ok(finish(cfg, replayer, series, gen_stats, &mut scratch))
    }

    /// Replays a shared encoded trace under `cfg` — the generate-once /
    /// replay-many half of [`Simulation::run`]. Events decode on the fly
    /// from the trace's contiguous buffer (no intermediate `Vec<Event>`),
    /// and the recorded generator counters stand in for a live generator's,
    /// so the outcome — totals, victim sequence, statistics — is
    /// bit-identical to `Simulation::run` on the parameters the trace was
    /// recorded from (pinned by `tests/encoded_equivalence.rs`).
    pub fn run_encoded(cfg: &RunConfig, trace: &EncodedTrace) -> Result<RunOutcome> {
        let mut replayer = cfg.build_replayer()?;
        let mut series = TimeSeries::new();
        let mut scratch = OracleScratch::new();
        let sample_every = cfg.sample_every.unwrap_or(u64::MAX);
        let mut next_sample = sample_every;
        let mut cursor = trace.cursor();
        while let Some(event) = cursor.next_event()? {
            replayer.apply(&event)?;
            if replayer.events_applied() >= next_sample {
                take_sample(&mut series, &replayer, &mut scratch);
                next_sample += sample_every;
            }
        }
        if cfg.sample_every.is_some() {
            take_sample(&mut series, &replayer, &mut scratch);
        }
        Ok(finish(cfg, replayer, series, trace.stats(), &mut scratch))
    }

    /// Replays a recorded trace under `cfg` (the configured workload
    /// parameters are ignored except for the seed, which labels the run).
    pub fn run_trace<'a>(
        cfg: &RunConfig,
        events: impl IntoIterator<Item = &'a Event>,
    ) -> Result<RunOutcome> {
        let mut replayer = cfg.build_replayer()?;
        let mut series = TimeSeries::new();
        let mut scratch = OracleScratch::new();
        let sample_every = cfg.sample_every.unwrap_or(u64::MAX);
        let mut next_sample = sample_every;
        for event in events {
            replayer.apply(event)?;
            if replayer.events_applied() >= next_sample {
                take_sample(&mut series, &replayer, &mut scratch);
                next_sample += sample_every;
            }
        }
        if cfg.sample_every.is_some() {
            take_sample(&mut series, &replayer, &mut scratch);
        }
        Ok(finish(
            cfg,
            replayer,
            series,
            GenStats::default(),
            &mut scratch,
        ))
    }
}

fn take_sample(series: &mut TimeSeries, replayer: &Replayer, scratch: &mut OracleScratch) {
    let db = replayer.db();
    let report = oracle::analyze_with(db, scratch);
    series.push(SamplePoint {
        events: replayer.events_applied(),
        resident_bytes: db.resident_bytes(),
        garbage_bytes: report.garbage_bytes,
        footprint: db.total_footprint(),
        collections: db.stats().collections,
    });
}

pub(crate) fn finish(
    cfg: &RunConfig,
    replayer: Replayer,
    series: TimeSeries,
    gen_stats: GenStats,
    scratch: &mut OracleScratch,
) -> RunOutcome {
    let events = replayer.events_applied();
    let db = replayer.db();
    let final_report = oracle::analyze_with(db, scratch);
    let io = db.io_stats();
    let db_stats = db.stats();
    let totals = RunTotals {
        app_ios: io.app_ios(),
        gc_ios: io.gc_ios(),
        max_footprint: db.total_footprint(),
        partitions: db.partition_count(),
        collections: db_stats.collections,
        reclaimed_bytes: db_stats.reclaimed_bytes,
        reclaimed_objects: db_stats.reclaimed_objects,
        final_live_bytes: final_report.live_bytes,
        final_garbage_bytes: final_report.garbage_bytes,
        final_nepotism_bytes: final_report.nepotism_bytes,
        events,
        app_net_ops: db.net_stats().app_reads + db.net_stats().app_writebacks,
        gc_net_ops: db.net_stats().gc_reads + db.net_stats().gc_writebacks,
    };
    let (_db, _collector, collections) = replayer.into_parts();
    RunOutcome {
        policy: cfg.policy,
        seed: cfg.workload.seed,
        totals,
        series,
        db_stats,
        gen_stats,
        collections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_types::Bytes;

    #[test]
    fn small_run_produces_sane_totals() {
        let cfg = RunConfig::small().with_seed(1);
        let out = Simulation::run(&cfg).unwrap();
        assert!(out.totals.events > 5_000);
        assert!(out.totals.app_ios > 0);
        assert!(out.totals.collections > 0);
        assert!(out.totals.reclaimed_bytes > Bytes::ZERO);
        assert!(out.totals.final_live_bytes > Bytes::ZERO);
        assert!(out.totals.max_footprint >= out.totals.final_live_bytes);
        assert_eq!(out.seed, 1);
        assert_eq!(out.policy, PolicyKind::UpdatedPointer);
    }

    #[test]
    fn no_collection_never_collects_and_uses_most_space() {
        let nc =
            Simulation::run(&RunConfig::small().with_policy(PolicyKind::NoCollection)).unwrap();
        let up =
            Simulation::run(&RunConfig::small().with_policy(PolicyKind::UpdatedPointer)).unwrap();
        assert_eq!(nc.totals.collections, 0);
        assert_eq!(nc.totals.gc_ios, 0);
        assert_eq!(nc.totals.reclaimed_bytes, Bytes::ZERO);
        assert!(
            nc.totals.max_footprint >= up.totals.max_footprint,
            "collection must not increase the footprint: {} vs {}",
            nc.totals.max_footprint,
            up.totals.max_footprint
        );
    }

    #[test]
    fn sampling_produces_a_chronological_series() {
        let cfg = RunConfig::small().with_seed(2).with_sampling(5_000);
        let out = Simulation::run(&cfg).unwrap();
        assert!(out.series.points().len() >= 2);
        let mut prev = 0;
        for p in out.series.points() {
            assert!(p.events >= prev);
            prev = p.events;
            assert!(p.footprint >= p.resident_bytes);
        }
    }

    #[test]
    fn collection_log_matches_totals() {
        let out = Simulation::run(&RunConfig::small().with_seed(7)).unwrap();
        assert_eq!(out.collections.len() as u64, out.totals.collections);
    }

    #[test]
    fn identical_configs_are_deterministic() {
        let cfg = RunConfig::small().with_seed(3);
        let a = Simulation::run(&cfg).unwrap();
        let b = Simulation::run(&cfg).unwrap();
        assert_eq!(a.totals, b.totals);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::run(&RunConfig::small().with_seed(4)).unwrap();
        let b = Simulation::run(&RunConfig::small().with_seed(5)).unwrap();
        assert_ne!(a.totals, b.totals);
    }

    #[test]
    fn encoded_replay_matches_live_run_including_series() {
        let cfg = RunConfig::small().with_seed(6).with_sampling(5_000);
        let live = Simulation::run(&cfg).unwrap();
        let trace = EncodedTrace::record(cfg.workload.clone()).unwrap();
        let replayed = Simulation::run_encoded(&cfg, &trace).unwrap();
        assert_eq!(live.totals, replayed.totals);
        assert_eq!(live.gen_stats, replayed.gen_stats, "header stats stand in");
        assert_eq!(live.collections, replayed.collections, "victim sequences");
        assert_eq!(live.db_stats, replayed.db_stats);
        assert_eq!(live.series.points(), replayed.series.points());
    }

    #[test]
    fn trace_replay_matches_live_run() {
        let cfg = RunConfig::small().with_seed(6);
        let live = Simulation::run(&cfg).unwrap();
        let events: Vec<Event> = SyntheticWorkload::new(cfg.workload.clone())
            .unwrap()
            .collect();
        let replayed = Simulation::run_trace(&cfg, &events).unwrap();
        assert_eq!(live.totals, replayed.totals);
    }
}

#[cfg(test)]
mod trigger_tests {
    use super::*;
    use pgc_core::Trigger;
    use pgc_types::Bytes;

    #[test]
    fn batch_collection_reduces_activations_not_work() {
        let single = Simulation::run(&RunConfig::small().with_seed(21)).unwrap();
        let batched =
            Simulation::run(&RunConfig::small().with_seed(21).with_collect_batch(3)).unwrap();
        // Same trigger points, three collections per activation.
        assert!(batched.totals.collections > single.totals.collections);
        assert!(batched.totals.reclaimed_bytes >= single.totals.reclaimed_bytes);
    }

    #[test]
    fn allocation_trigger_collects_even_with_no_overwrite_pressure() {
        let mut cfg = RunConfig::small().with_seed(22);
        cfg.workload.deletions_per_round = 0; // no overwrites at all
        let overwrite_based = Simulation::run(&cfg.clone()).unwrap();
        assert_eq!(overwrite_based.totals.collections, 0);
        let alloc_based =
            Simulation::run(&cfg.with_trigger(Trigger::AllocationBytes(Bytes::from_kib(32))))
                .unwrap();
        assert!(alloc_based.totals.collections > 0);
    }

    #[test]
    fn growth_trigger_collects_on_space_pressure() {
        let cfg = RunConfig::small()
            .with_seed(23)
            .with_trigger(Trigger::PartitionGrowth);
        let out = Simulation::run(&cfg).unwrap();
        assert!(out.totals.collections > 0);
        // Growth-triggered collection bounds the footprint by construction.
        assert!(out.totals.max_footprint >= out.totals.final_live_bytes);
    }
}
