//! # pgc-sim
//!
//! The trace-driven simulator (Sec. 4.2) and the experiment harness that
//! regenerates every table and figure of the paper's evaluation (Sec. 6).
//!
//! * [`replay`] — [`replay::Replayer`]: applies workload events to a
//!   [`pgc_odb::Database`] under a [`pgc_core::Collector`], mapping
//!   workload-level node ids to database oids and running collections when
//!   the overwrite trigger fires.
//! * [`metrics`] — [`metrics::RunTotals`] (the aggregate numbers behind
//!   Tables 2–5) and [`metrics::TimeSeries`] (the sampled curves behind
//!   Figures 4–5).
//! * [`run`] — [`run::RunConfig`] + [`run::Simulation::builder`]: one
//!   complete simulation from a parameter set, a shared encoded trace, or
//!   a recorded event slice, with optional bus observers and telemetry.
//! * [`shard`] — [`shard::Shard`]: the self-contained unit a run drives —
//!   one database + policy + scheduler + barrier bus + telemetry handle,
//!   stepped by event batches. `Simulation` is its 1-shard special case;
//!   the multi-tenant `pgc-server` runtime hosts one per client stream.
//! * [`durable`] — recovery-by-replay over a `pgc-durable` data
//!   directory: [`durable::recover`] rebuilds the exact run from the
//!   manifest, change log, and checksummed snapshots, bit-identical to an
//!   uninterrupted run over the surviving event prefix.
//! * [`shadow`] — shadow-scoreboard policy races: one driver policy makes
//!   the collection decisions while every other honest policy's scoreboard
//!   rides the same barrier event bus and records the victim it *would*
//!   have picked, yielding a per-collection agreement matrix and a
//!   cumulative-regret accounting (would-be picks scored against realized
//!   garbage) from a single replay.
//! * [`summary`] — mean / standard deviation over the ten-seed repetitions
//!   the paper reports.
//! * [`experiment`] — multi-policy, multi-seed comparisons
//!   ([`experiment::Comparison`]) and parameter sweeps, scheduled on the
//!   shared-trace engine: each seed's workload is recorded once into a
//!   [`pgc_workload::TraceCache`] and the encoded buffer is fanned out to
//!   every policy worker, which replays it through
//!   [`run::Simulation::builder`].
//! * [`paper`] — the exact configurations of the paper's experiments
//!   (Tables 2–4 headline setup, Figure 6 size scaling, Table 5
//!   connectivity sweep).
//! * [`report`] — plain-text rendering of each table/figure in the paper's
//!   row order, plus CSV output for the time-series figures.
//! * [`chart`] — ASCII line charts of the Figure 4/5 curves for terminal
//!   inspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod durable;
pub mod experiment;
pub mod metrics;
pub mod paper;
pub mod replay;
pub mod report;
pub mod run;
pub mod shadow;
pub mod shard;
pub mod summary;

pub use chart::{render_chart, ChartMetric};
pub use durable::{outcome_digest, recover, RecoveredRun};
pub use experiment::{default_threads, Comparison, Experiment, PolicyRow, RunTelemetry};
pub use metrics::{RunTotals, SamplePoint, TimeSeries};
pub use replay::Replayer;
pub use run::{drive_encoded, RunConfig, RunOutcome, Simulation, SimulationBuilder};
pub use shadow::{
    agreement_table, regret_table, run_race, run_race_with_telemetry, RaceOutcome, RaceRecord,
    ShadowPick,
};
pub use shard::Shard;
pub use summary::Summary;
// The telemetry vocabulary rides along so simulator users don't need a
// direct `pgc_telemetry` dependency for the common cases.
pub use pgc_telemetry::{TelemetryLevel, TelemetrySnapshot};
