//! The barrier-bus bystander that schedules durability safepoints.
//!
//! [`LogObserver`] rides the shard's barrier event bus exactly like the
//! telemetry tap: it never mutates the database, it only watches
//! [`BarrierEvent::CollectionCompleted`] and raises the shared
//! [`SafepointSignal`]. The owning shard polls the signal after each step
//! and, when a collection has completed since the last poll, drives the
//! [`crate::store::DurableStore`] through a safepoint (snapshot
//! generation, safepoint frame, fsync). The split keeps the bus contract
//! intact — observers are bystanders — while the store, which needs
//! `&Database` and file handles, stays outside the bus.
//!
//! The signal also meters on-disk churn per collection (bytes copied and
//! reclaimed), the Sears & van Ingen fragmentation angle.

use pgc_odb::{BarrierEvent, BarrierObserver};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared between the [`LogObserver`] on the bus and the shard that owns
/// the durable store.
#[derive(Debug, Default)]
pub struct SafepointSignal {
    collections: AtomicU64,
    copied_bytes: AtomicU64,
    reclaimed_bytes: AtomicU64,
}

impl SafepointSignal {
    /// Collections completed so far.
    pub fn collections(&self) -> u64 {
        self.collections.load(Ordering::Relaxed)
    }

    /// Bytes evacuated (copied out of victims) so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    /// Bytes reclaimed so far.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_bytes.load(Ordering::Relaxed)
    }
}

/// The bus-side half: counts completed collections into the signal.
pub struct LogObserver {
    signal: Arc<SafepointSignal>,
}

impl LogObserver {
    /// Creates the observer and the signal the owning shard polls.
    pub fn new() -> (Self, Arc<SafepointSignal>) {
        let signal = Arc::new(SafepointSignal::default());
        (
            Self {
                signal: Arc::clone(&signal),
            },
            signal,
        )
    }
}

impl BarrierObserver for LogObserver {
    fn on_event(&mut self, event: &BarrierEvent) {
        if let BarrierEvent::CollectionCompleted(outcome) = event {
            self.signal
                .copied_bytes
                .fetch_add(outcome.live_bytes.get(), Ordering::Relaxed);
            self.signal
                .reclaimed_bytes
                .fetch_add(outcome.garbage_bytes.get(), Ordering::Relaxed);
            self.signal.collections.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgc_odb::CollectionOutcome;
    use pgc_types::{Bytes, PartitionId};

    #[test]
    fn counts_only_collection_completions() {
        let (mut obs, signal) = LogObserver::new();
        obs.on_event(&BarrierEvent::TriggerTick { activation: 1 });
        assert_eq!(signal.collections(), 0);
        obs.on_event(&BarrierEvent::CollectionCompleted(CollectionOutcome {
            victim: PartitionId(1),
            target: PartitionId(0),
            live_objects: 2,
            live_bytes: Bytes(300),
            garbage_objects: 1,
            garbage_bytes: Bytes(100),
            forwarded_pointers: 0,
            gc_reads: 0,
            gc_writes: 0,
        }));
        assert_eq!(signal.collections(), 1);
        assert_eq!(signal.copied_bytes(), 300);
        assert_eq!(signal.reclaimed_bytes(), 100);
    }
}
