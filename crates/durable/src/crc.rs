//! CRC-32 (IEEE 802.3 polynomial, the zlib/pippin checksum), slice-by-8
//! table-driven: eight derived tables let the hot loop fold eight bytes
//! per step instead of chaining a load per byte.

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Streaming CRC-32 state: feed bytes with [`Crc32::update`], close with
/// [`Crc32::finish`]. Lets the log writer checksum a frame scattered
/// across several slices without assembling a contiguous copy.
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub(crate) fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    pub(crate) fn finish(self) -> u32 {
        !self.0
    }
}

/// CRC-32 of `bytes` in one shot.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"partition snapshot");
        let mut flipped = b"partition snapshot".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..203u32)
            .map(|i| (i.wrapping_mul(37) >> 2) as u8)
            .collect();
        let whole = crc32(&data);
        for split in 0..=data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), whole, "split at {split}");
        }
    }
}
