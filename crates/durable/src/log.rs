//! The segmented append-only change log: `log-NNNNNNNN.pgcl`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! segment header: magic "PGCL" | version u32 | seq u64 | start_event u64
//! frame:          len u32 | kind u8 | payload[len] | crc32 u32
//! ```
//!
//! The checksum covers `kind` and the payload. Two frame kinds exist:
//!
//! * **events** (`kind 1`): `count u32` followed by `count` workload
//!   events in the compact log codec (`u32` ids with a wide fallback;
//!   see `crate::codec`). Events are logged *ahead* of being applied, so
//!   the concatenated event frames are a replayable prefix of the run's
//!   input stream.
//! * **safepoint** (`kind 2`): `events_applied u64 | collections u64 |
//!   generation u64` — a collection boundary; `generation` names the
//!   snapshot generation written at this safepoint (0 = none).
//!
//! The reader is torn-tail tolerant: a truncated or checksum-corrupt
//! frame at the end of the **newest** segment is reported as a
//! [`TornTail`] and dropped (frames end on event boundaries, so the
//! surviving prefix is always cleanly replayable). The same damage in an
//! older segment is a hard [`PgcError::TraceFormat`] error — that is real
//! corruption, not an interrupted write.

use crate::codec::decode_compact;
use crate::crc::{crc32, Crc32};
use pgc_types::{PgcError, Result};
use pgc_workload::Event;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;

pub(crate) const MAGIC: &[u8; 4] = b"PGCL";
pub(crate) const VERSION: u32 = 1;
const HEADER_BYTES: u64 = 4 + 4 + 8 + 8;

pub(crate) const FRAME_EVENTS: u8 = 1;
pub(crate) const FRAME_SAFEPOINT: u8 = 2;

fn io_err(e: std::io::Error) -> PgcError {
    PgcError::TraceIo(e.to_string())
}

/// File name of log segment `seq`.
pub(crate) fn segment_name(seq: u64) -> String {
    format!("log-{seq:08}.pgcl")
}

/// Write buffer in front of each segment file; sized so a whole block of
/// frames accumulates between safepoint flushes without write syscalls.
const WRITE_BUF_BYTES: usize = 512 << 10;

/// Dirty bytes that accumulate before a safepoint kicks the background
/// flusher. Kicking on every safepoint would sync near-clean files over
/// and over; kicking by volume keeps the dirty-page debt bounded while
/// staying off the hot path between kicks.
const KICK_BYTES: u64 = 1 << 20;

/// Background fsync helper. An `fsync` pays for every dirty page still
/// unwritten, so if syncs only ever happen at the mandatory durability
/// points (rotation, snapshot generations, shutdown) each one stalls the
/// hot path for the full accumulated delta. The flusher drains that debt
/// concurrently: at every safepoint the writer hands it a duplicated
/// file handle and it fsyncs in the background while the run keeps
/// going, so the synchronous syncs only cover the small tail written
/// since. Dropped kicks are fine — this is an optimization, not a
/// guarantee; the synchronous syncs still establish durability.
struct Flusher {
    tx: Option<mpsc::SyncSender<File>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn() -> Self {
        let (tx, rx) = mpsc::sync_channel::<File>(2);
        let handle = thread::Builder::new()
            .name("pgc-log-flush".into())
            .spawn(move || {
                for file in rx {
                    // Best-effort: a failed background sync is retried by
                    // the next synchronous durability point.
                    let _ = file.sync_data();
                }
            })
            .ok();
        Self {
            tx: Some(tx),
            handle,
        }
    }

    /// Asks for a background fsync of `file`; drops the request if the
    /// flusher is still busy with earlier ones.
    fn kick(&self, file: &File) {
        if let (Some(tx), Ok(clone)) = (&self.tx, file.try_clone()) {
            let _ = tx.try_send(clone);
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.tx = None; // close the channel so the thread exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The append side. Owned by [`crate::store::DurableStore`].
pub(crate) struct LogWriter {
    dir: PathBuf,
    out: BufWriter<File>,
    seq: u64,
    seg_bytes: u64,
    segment_limit: u64,
    fsync_every: u64,
    frames_since_sync: u64,
    bytes_since_kick: u64,
    flusher: Flusher,
    // Counters surfaced through StorageStats.
    pub(crate) bytes_written: u64,
    pub(crate) frames: u64,
    pub(crate) fsyncs: u64,
    pub(crate) segments: u64,
}

impl LogWriter {
    pub(crate) fn create(dir: &Path, fsync_every: u64, segment_limit: u64) -> Result<Self> {
        let mut writer = Self {
            dir: dir.to_path_buf(),
            out: BufWriter::with_capacity(WRITE_BUF_BYTES, open_segment(dir, 0, 0)?),
            seq: 0,
            seg_bytes: HEADER_BYTES,
            segment_limit,
            fsync_every,
            frames_since_sync: 0,
            bytes_since_kick: 0,
            flusher: Flusher::spawn(),
            bytes_written: HEADER_BYTES,
            frames: 0,
            fsyncs: 0,
            segments: 1,
        };
        writer.write_header(0)?;
        Ok(writer)
    }

    fn write_header(&mut self, start_event: u64) -> Result<()> {
        self.out.write_all(MAGIC).map_err(io_err)?;
        self.out.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
        self.out
            .write_all(&self.seq.to_le_bytes())
            .map_err(io_err)?;
        self.out
            .write_all(&start_event.to_le_bytes())
            .map_err(io_err)?;
        Ok(())
    }

    /// Writes one frame whose payload is the concatenation of `parts`,
    /// checksumming as it goes — no intermediate assembly copy.
    fn write_frame(&mut self, kind: u8, parts: &[&[u8]]) -> Result<()> {
        let payload_len: usize = parts.iter().map(|p| p.len()).sum();
        let mut crc = Crc32::new();
        crc.update(&[kind]);
        self.out
            .write_all(&(payload_len as u32).to_le_bytes())
            .map_err(io_err)?;
        self.out.write_all(&[kind]).map_err(io_err)?;
        for part in parts {
            crc.update(part);
            self.out.write_all(part).map_err(io_err)?;
        }
        self.out
            .write_all(&crc.finish().to_le_bytes())
            .map_err(io_err)?;
        let frame_bytes = 4 + 1 + payload_len as u64 + 4;
        self.seg_bytes += frame_bytes;
        self.bytes_written += frame_bytes;
        self.bytes_since_kick += frame_bytes;
        self.frames += 1;
        self.frames_since_sync += 1;
        if self.fsync_every > 0 && self.frames_since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends an events frame: `count` events already encoded in `body`.
    pub(crate) fn append_events(&mut self, count: u32, body: &[u8]) -> Result<()> {
        self.write_frame(FRAME_EVENTS, &[&count.to_le_bytes(), body])
    }

    /// Appends a safepoint frame and rotates the segment if it outgrew
    /// the configured limit.
    ///
    /// Every safepoint *flushes* to the OS — buffered frames survive a
    /// process kill from here on — and, once [`KICK_BYTES`] of frames
    /// have accumulated, kicks the background [`Flusher`] so dirty pages
    /// drain to disk while the run continues. The
    /// synchronous `fsync` (power-loss durability) is reserved for
    /// safepoints that carry a snapshot generation, segment rotation,
    /// and shutdown; `fsync_every` tightens that from the frame side.
    /// Per-collection synchronous fsyncs would dominate the whole write
    /// path (milliseconds each against a microsecond-scale
    /// inter-collection interval) for a guarantee the torn-tail recovery
    /// does not need.
    pub(crate) fn safepoint(
        &mut self,
        events_applied: u64,
        collections: u64,
        generation: u64,
    ) -> Result<()> {
        let mut payload = [0u8; 24];
        payload[..8].copy_from_slice(&events_applied.to_le_bytes());
        payload[8..16].copy_from_slice(&collections.to_le_bytes());
        payload[16..].copy_from_slice(&generation.to_le_bytes());
        self.write_frame(FRAME_SAFEPOINT, &[&payload])?;
        if generation > 0 {
            self.sync()?;
        } else {
            self.out.flush().map_err(io_err)?;
            if self.bytes_since_kick >= KICK_BYTES {
                self.flusher.kick(self.out.get_ref());
                self.bytes_since_kick = 0;
            }
        }
        if self.seg_bytes >= self.segment_limit {
            self.rotate(events_applied)?;
        }
        Ok(())
    }

    fn rotate(&mut self, start_event: u64) -> Result<()> {
        // A sealed segment is made power-loss durable before the next one
        // opens, so only the newest segment can ever hold a torn tail.
        self.sync()?;
        self.seq += 1;
        self.out = BufWriter::with_capacity(
            WRITE_BUF_BYTES,
            open_segment(&self.dir, self.seq, start_event)?,
        );
        self.seg_bytes = HEADER_BYTES;
        self.bytes_written += HEADER_BYTES;
        self.segments += 1;
        self.write_header(start_event)
    }

    fn sync(&mut self) -> Result<()> {
        self.out.flush().map_err(io_err)?;
        self.out.get_ref().sync_data().map_err(io_err)?;
        self.fsyncs += 1;
        self.frames_since_sync = 0;
        self.bytes_since_kick = 0;
        Ok(())
    }

    /// Final flush + fsync at shutdown.
    pub(crate) fn finish(&mut self) -> Result<()> {
        self.sync()
    }
}

fn open_segment(dir: &Path, seq: u64, _start_event: u64) -> Result<File> {
    File::create(dir.join(segment_name(seq))).map_err(io_err)
}

/// A safepoint frame as read back from the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafepointNote {
    /// Events applied when the safepoint was written.
    pub events_applied: u64,
    /// Collections completed at that point.
    pub collections: u64,
    /// Snapshot generation written at this safepoint (0 = none).
    pub generation: u64,
}

/// An interrupted write detected (and dropped) at the end of the newest
/// log segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment sequence number the tear was found in.
    pub segment: u64,
    /// Byte offset of the first unusable frame.
    pub offset: u64,
    /// Human-readable cause (`truncated frame`, `checksum mismatch`, …).
    pub reason: String,
}

/// Everything read back from a data directory's change log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogContents {
    /// The replayable input events, in append order.
    pub events: Vec<Event>,
    /// Safepoint markers, in append order.
    pub safepoints: Vec<SafepointNote>,
    /// The torn tail, when the newest segment ended mid-frame.
    pub torn: Option<TornTail>,
    /// Number of segment files read.
    pub segments: usize,
}

/// Reads the whole change log under `dir`, tolerating a torn tail in the
/// newest segment.
pub fn read_log(dir: &Path) -> Result<LogContents> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let name = entry.map_err(io_err)?.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("log-")
            .and_then(|s| s.strip_suffix(".pgcl"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    if seqs.is_empty() {
        return Err(PgcError::TraceFormat(format!(
            "no log segments under {}",
            dir.display()
        )));
    }
    let mut contents = LogContents {
        events: Vec::new(),
        safepoints: Vec::new(),
        torn: None,
        segments: seqs.len(),
    };
    for (i, &seq) in seqs.iter().enumerate() {
        if seq != i as u64 {
            return Err(PgcError::TraceFormat(format!(
                "log segments not contiguous: expected seq {i}, found {seq}"
            )));
        }
        let last = i + 1 == seqs.len();
        read_segment(dir, seq, last, &mut contents)?;
        if contents.torn.is_some() {
            break;
        }
    }
    Ok(contents)
}

fn read_segment(dir: &Path, seq: u64, last: bool, out: &mut LogContents) -> Result<()> {
    let bytes = fs::read(dir.join(segment_name(seq))).map_err(io_err)?;
    let torn = |offset: usize, reason: &str| TornTail {
        segment: seq,
        offset: offset as u64,
        reason: reason.to_string(),
    };
    let hard = |reason: &str| {
        PgcError::TraceFormat(format!(
            "log segment {seq}: {reason} (not in newest segment)"
        ))
    };
    if bytes.len() < HEADER_BYTES as usize || &bytes[..4] != MAGIC {
        return Err(PgcError::TraceFormat(format!(
            "log segment {seq}: bad or missing header"
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(PgcError::TraceFormat(format!(
            "log segment {seq}: unsupported version {version}"
        )));
    }
    let stated_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if stated_seq != seq {
        return Err(PgcError::TraceFormat(format!(
            "log segment {seq}: header says seq {stated_seq}"
        )));
    }
    let start_event = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if start_event != out.events.len() as u64 {
        return Err(PgcError::TraceFormat(format!(
            "log segment {seq}: starts at event {start_event}, but {} events precede it",
            out.events.len()
        )));
    }
    let mut pos = HEADER_BYTES as usize;
    while pos < bytes.len() {
        let frame_start = pos;
        if bytes.len() - pos < 4 + 1 + 4 {
            if last {
                out.torn = Some(torn(frame_start, "truncated frame header"));
                return Ok(());
            }
            return Err(hard("truncated frame header"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if bytes.len() - pos < 1 + len + 4 {
            if last {
                out.torn = Some(torn(frame_start, "truncated frame body"));
                return Ok(());
            }
            return Err(hard("truncated frame body"));
        }
        let kind_and_payload = &bytes[pos..pos + 1 + len];
        let stated_crc =
            u32::from_le_bytes(bytes[pos + 1 + len..pos + 1 + len + 4].try_into().unwrap());
        if crc32(kind_and_payload) != stated_crc {
            if last {
                out.torn = Some(torn(frame_start, "frame checksum mismatch"));
                return Ok(());
            }
            return Err(hard("frame checksum mismatch"));
        }
        let kind = kind_and_payload[0];
        let payload = &kind_and_payload[1..];
        pos += 1 + len + 4;
        match kind {
            FRAME_EVENTS => decode_events_frame(seq, payload, &mut out.events)?,
            FRAME_SAFEPOINT => {
                if payload.len() != 24 {
                    return Err(PgcError::TraceFormat(format!(
                        "log segment {seq}: safepoint frame has {} bytes",
                        payload.len()
                    )));
                }
                out.safepoints.push(SafepointNote {
                    events_applied: u64::from_le_bytes(payload[..8].try_into().unwrap()),
                    collections: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
                    generation: u64::from_le_bytes(payload[16..].try_into().unwrap()),
                });
            }
            other => {
                return Err(PgcError::TraceFormat(format!(
                    "log segment {seq}: unknown frame kind {other}"
                )));
            }
        }
    }
    Ok(())
}

fn decode_events_frame(seq: u64, payload: &[u8], events: &mut Vec<Event>) -> Result<()> {
    if payload.len() < 4 {
        return Err(PgcError::TraceFormat(format!(
            "log segment {seq}: events frame too short"
        )));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().unwrap());
    let body = &payload[4..];
    let mut pos = 0usize;
    for _ in 0..count {
        match decode_compact(body, &mut pos)? {
            Some(event) => events.push(event),
            None => {
                return Err(PgcError::TraceFormat(format!(
                    "log segment {seq}: events frame ended early"
                )));
            }
        }
    }
    if pos != body.len() {
        return Err(PgcError::TraceFormat(format!(
            "log segment {seq}: events frame has trailing bytes"
        )));
    }
    Ok(())
}
