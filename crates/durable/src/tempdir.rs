//! A self-cleaning scratch directory (no external `tempfile` dependency).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, process};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root that is removed (recursively) on
/// drop. Used by tests, benches, and the recovery smoke tooling so no run
/// leaves litter behind.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates `"$TMPDIR/pgc-<label>-<pid>-<seq>"`.
    ///
    /// # Panics
    /// Panics if the directory cannot be created (tests want loud failure,
    /// not a silently shared path).
    pub fn new(label: &str) -> Self {
        let seq = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir().join(format!("pgc-{label}-{}-{seq}", process::id()));
        fs::create_dir_all(&path).expect("create scratch dir");
        Self { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, rel: impl AsRef<Path>) -> PathBuf {
        self.path.join(rel)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_distinct_and_cleaned_up() {
        let a = ScratchDir::new("t");
        let b = ScratchDir::new("t");
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_path_buf();
        fs::write(a.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().exists());
    }
}
