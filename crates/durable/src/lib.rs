//! # pgc-durable
//!
//! The durable storage backend: what turns a purely in-memory shard into a
//! database that survives its process. Everything is hand-rolled and
//! dependency-free, following the checksummed/versioned per-partition file
//! layout of the pippin format.
//!
//! * [`config`] — [`config::DurabilityConfig`] /
//!   [`config::DurabilityMode`]: `Off` / `LogOnly` / `SnapshotAndLog`,
//!   plus fsync batching, snapshot cadence, and log-segment sizing knobs.
//! * [`log`] — the append-only change log: segmented `log-*.pgcl` files of
//!   CRC-framed records. Event frames carry the workload's input events in
//!   a compact tagged encoding (`u32` ids with a wide fallback — the log
//!   is write-amplification-sensitive, so it packs tighter than the PGCT
//!   trace codec), making the log a replayable trace; safepoint frames
//!   mark collection boundaries and snapshot generations. The reader
//!   tolerates a torn tail: a truncated or corrupted final frame is
//!   detected by length/checksum and dropped, never a crash.
//! * [`snapshot`] — per-partition `snap-*.pgcs` files written at
//!   collection safepoints: versioned header, length-prefixed object
//!   records (oid, size, weight, birth, pointer slots), CRC-32 footer,
//!   written to a temp file and renamed into place.
//! * [`manifest`] — a checksummed key=value `MANIFEST.pgc` recording how
//!   the run was configured, so recovery can rebuild the exact
//!   configuration without out-of-band knowledge.
//! * [`store`] — [`store::DurableStore`], the run-side handle: buffers
//!   events into block-sized frames (write-ahead, before they are
//!   applied), writes snapshots + safepoint frames at collection
//!   boundaries, rotates and fsyncs segments, and reports
//!   [`store::StorageStats`].
//! * [`observer`] — [`observer::LogObserver`], the barrier-bus bystander
//!   that watches `CollectionCompleted` events and raises the shared
//!   [`observer::SafepointSignal`] the owning shard polls to schedule
//!   safepoints (and to meter on-disk churn per collection).
//! * [`tempdir`] — [`tempdir::ScratchDir`], a self-cleaning temp
//!   directory for tests and benches (no external tempfile dependency).
//!
//! Recovery itself lives in `pgc-sim` (it needs `RunConfig` and the
//! `Replayer` pump); this crate supplies the file formats and readers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod codec;
pub mod config;
pub(crate) mod crc;
pub mod log;
pub mod manifest;
pub mod observer;
pub mod snapshot;
pub mod store;
pub mod tempdir;

pub use config::{DurabilityConfig, DurabilityMode};
pub use log::{read_log, LogContents, SafepointNote, TornTail};
pub use manifest::Manifest;
pub use observer::{LogObserver, SafepointSignal};
pub use snapshot::{read_snapshot, scan_snapshots, PartitionSnapshot, SnapshotRecord};
pub use store::{DurableStore, StorageStats};
pub use tempdir::ScratchDir;
