//! [`DurableStore`]: the run-side persistence handle.
//!
//! One store per shard (one data directory per stream). The owning shard
//! feeds it every input event *before* applying it (write-ahead), polls
//! the [`crate::observer::SafepointSignal`] after each step, and drives
//! [`DurableStore::safepoint`] when a collection has completed. Events are
//! buffered and framed at [`pgc_workload::BLOCK_EVENTS`] granularity so
//! frame overhead stays negligible; fsyncs are batched per
//! [`crate::config::DurabilityConfig`].

use crate::codec::encode_compact;
use crate::config::{DurabilityConfig, DurabilityMode};
use crate::log::LogWriter;
use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::snapshot::{prune_below, PartitionSnapshot};
use pgc_odb::Database;
use pgc_types::{PartitionId, PgcError, Result};
use pgc_workload::{Event, BLOCK_EVENTS};
use std::fs;

/// How many snapshot generations stay on disk (current + fallback).
const KEEP_GENERATIONS: u64 = 2;

/// Byte and operation counters for one store's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Bytes appended to the change log (headers + frames).
    pub log_bytes: u64,
    /// Frames appended to the change log.
    pub log_frames: u64,
    /// Log segment files written.
    pub log_segments: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Snapshot files written.
    pub snapshots: u64,
    /// Bytes written into snapshot files.
    pub snapshot_bytes: u64,
    /// Safepoints driven (collection boundaries persisted).
    pub safepoints: u64,
}

/// The write side of a data directory: change log + snapshots + manifest.
pub struct DurableStore {
    cfg: DurabilityConfig,
    writer: LogWriter,
    /// Encoded-but-unframed events (flushed at block granularity).
    scratch: Vec<u8>,
    pending: u32,
    /// Next snapshot generation (1-based).
    generation: u64,
    /// Safepoints since the last snapshot generation.
    since_snapshot: u64,
    snapshots: u64,
    snapshot_bytes: u64,
    safepoints: u64,
}

impl DurableStore {
    /// Creates the data directory and opens the first log segment. Fails
    /// if the directory already holds a previous run's manifest (refusing
    /// to silently shadow recoverable data).
    pub fn create(cfg: &DurabilityConfig) -> Result<Self> {
        debug_assert!(cfg.is_enabled());
        fs::create_dir_all(&cfg.dir).map_err(|e| PgcError::TraceIo(e.to_string()))?;
        if cfg.dir.join(MANIFEST_FILE).exists() {
            return Err(PgcError::TraceIo(format!(
                "data dir {} already holds a run (remove it first)",
                cfg.dir.display()
            )));
        }
        let writer = LogWriter::create(&cfg.dir, cfg.fsync_every, cfg.segment_bytes)?;
        Ok(Self {
            cfg: cfg.clone(),
            writer,
            scratch: Vec::with_capacity(BLOCK_EVENTS * 16),
            pending: 0,
            generation: 1,
            since_snapshot: 0,
            snapshots: 0,
            snapshot_bytes: 0,
            safepoints: 0,
        })
    }

    /// Writes the run manifest (called once by the owner before the first
    /// event lands).
    pub fn write_manifest(&self, manifest: &Manifest) -> Result<()> {
        manifest.write_to(&self.cfg.dir)
    }

    /// Buffers one input event, ahead of it being applied.
    #[inline]
    pub fn append_event(&mut self, event: &Event) -> Result<()> {
        encode_compact(&mut self.scratch, event);
        self.pending += 1;
        if self.pending as usize >= BLOCK_EVENTS {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Buffers a batch of input events: encodes whole block-sized runs
    /// in one tight loop between flushes.
    pub fn append_events(&mut self, events: &[Event]) -> Result<()> {
        let mut rest = events;
        while !rest.is_empty() {
            let room = BLOCK_EVENTS - self.pending as usize;
            let (chunk, tail) = rest.split_at(rest.len().min(room));
            for event in chunk {
                encode_compact(&mut self.scratch, event);
            }
            self.pending += chunk.len() as u32;
            if self.pending as usize >= BLOCK_EVENTS {
                self.flush_pending()?;
            }
            rest = tail;
        }
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<()> {
        if self.pending > 0 {
            self.writer.append_events(self.pending, &self.scratch)?;
            self.scratch.clear();
            self.pending = 0;
        }
        Ok(())
    }

    /// Drives one safepoint: flushes buffered events, writes a snapshot
    /// generation when the cadence (or `force_snapshot`) says so, and
    /// appends the safepoint frame. The log is flushed to the OS at every
    /// safepoint and fsynced when a snapshot generation was written.
    pub fn safepoint(
        &mut self,
        db: &Database,
        events_applied: u64,
        collections: u64,
        force_snapshot: bool,
    ) -> Result<()> {
        self.flush_pending()?;
        let mut generation = 0;
        if self.cfg.snapshots_enabled() {
            self.since_snapshot += 1;
            if force_snapshot || self.since_snapshot >= self.cfg.snapshot_every {
                generation = self.generation;
                for partition in 0..db.partition_count() as u32 {
                    let snap = PartitionSnapshot::capture(
                        db,
                        PartitionId(partition),
                        generation,
                        events_applied,
                        collections,
                    )?;
                    self.snapshot_bytes += snap.write_to(&self.cfg.dir)?;
                    self.snapshots += 1;
                }
                self.generation += 1;
                self.since_snapshot = 0;
                if generation > KEEP_GENERATIONS {
                    prune_below(&self.cfg.dir, generation - KEEP_GENERATIONS + 1)?;
                }
            }
        }
        self.writer
            .safepoint(events_applied, collections, generation)?;
        self.safepoints += 1;
        Ok(())
    }

    /// Clean shutdown: final safepoint (with a final snapshot generation
    /// when snapshots are enabled) and a last fsync.
    pub fn finish(&mut self, db: &Database, events_applied: u64, collections: u64) -> Result<()> {
        self.safepoint(db, events_applied, collections, true)?;
        self.writer.finish()
    }

    /// The mode this store runs in.
    pub fn mode(&self) -> DurabilityMode {
        self.cfg.mode
    }

    /// Counters so far.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            log_bytes: self.writer.bytes_written,
            log_frames: self.writer.frames,
            log_segments: self.writer.segments,
            fsyncs: self.writer.fsyncs,
            snapshots: self.snapshots,
            snapshot_bytes: self.snapshot_bytes,
            safepoints: self.safepoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::read_log;
    use crate::tempdir::ScratchDir;
    use pgc_types::Bytes;
    use pgc_workload::NodeId;

    fn events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::CreateRoot {
                node: NodeId(i),
                size: Bytes(64),
                slots: 2,
            })
            .collect()
    }

    #[test]
    fn log_round_trips_events_and_safepoints() {
        let dir = ScratchDir::new("store");
        let cfg = DurabilityConfig::log_only(dir.path());
        let mut store = DurableStore::create(&cfg).unwrap();
        let evs = events(10_000);
        store.append_events(&evs[..6_000]).unwrap();
        // A mid-run safepoint needs a database; LogOnly never touches it,
        // so a minimal one suffices.
        let db = Database::new(pgc_types::DbConfig::default()).unwrap();
        store.safepoint(&db, 6_000, 1, false).unwrap();
        store.append_events(&evs[6_000..]).unwrap();
        store.finish(&db, 10_000, 2).unwrap();

        let log = read_log(dir.path()).unwrap();
        assert_eq!(log.events, evs);
        assert!(log.torn.is_none());
        assert_eq!(log.safepoints.len(), 2);
        assert_eq!(log.safepoints[0].events_applied, 6_000);
        assert_eq!(log.safepoints[1].collections, 2);
        let stats = store.stats();
        assert!(stats.log_bytes > 0);
        assert!(stats.fsyncs >= 1, "shutdown always fsyncs");
        assert_eq!(stats.safepoints, 2);
    }

    #[test]
    fn a_torn_tail_is_dropped_cleanly_at_every_truncation_point() {
        let dir = ScratchDir::new("torn");
        let cfg = DurabilityConfig::log_only(dir.path());
        let mut store = DurableStore::create(&cfg).unwrap();
        let evs = events(1_000);
        store.append_events(&evs).unwrap();
        let db = Database::new(pgc_types::DbConfig::default()).unwrap();
        store.finish(&db, 1_000, 0).unwrap();
        let path = dir.join(crate::log::segment_name(0));
        let full = fs::read(&path).unwrap();
        let whole = read_log(dir.path()).unwrap();
        assert_eq!(whole.events, evs);

        // Chop the file at a sweep of lengths: every prefix must parse to
        // a clean event prefix (or nothing), never crash or misdecode.
        for cut in (24..full.len()).step_by(97) {
            fs::write(&path, &full[..cut]).unwrap();
            let log = read_log(dir.path()).unwrap();
            assert!(log.events.len() <= evs.len());
            assert_eq!(log.events[..], evs[..log.events.len()]);
        }

        // Corrupt (rather than truncate) the tail: checksum must catch it.
        // Flip a byte inside the events frame so its whole frame drops.
        let mut corrupt = full.clone();
        corrupt[40] ^= 0xFF;
        fs::write(&path, &corrupt).unwrap();
        let log = read_log(dir.path()).unwrap();
        assert!(log.torn.is_some());
        assert!(log.events.len() < evs.len());
    }

    #[test]
    fn refuses_to_reuse_a_populated_data_dir() {
        let dir = ScratchDir::new("reuse");
        let cfg = DurabilityConfig::log_only(dir.path());
        let store = DurableStore::create(&cfg).unwrap();
        store.write_manifest(&Manifest::new()).unwrap();
        assert!(DurableStore::create(&cfg).is_err());
    }

    #[test]
    fn segments_rotate_at_the_configured_size() {
        let dir = ScratchDir::new("rotate");
        let cfg = DurabilityConfig::log_only(dir.path()).with_segment_bytes(4 << 10);
        let mut store = DurableStore::create(&cfg).unwrap();
        let db = Database::new(pgc_types::DbConfig::default()).unwrap();
        let evs = events(4_000);
        for chunk in evs.chunks(500) {
            store.append_events(chunk).unwrap();
            let applied = store.stats().safepoints;
            store
                .safepoint(&db, 500 * (applied + 1), applied + 1, false)
                .unwrap();
        }
        store.finish(&db, 4_000, 9).unwrap();
        let log = read_log(dir.path()).unwrap();
        assert!(log.segments > 1, "expected rotation, got {}", log.segments);
        assert_eq!(log.events, evs);
    }
}
