//! Durability knobs: what to persist, where, and how eagerly to sync.

use std::path::{Path, PathBuf};

/// What the durable store persists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Nothing touches disk (the historical in-memory behavior).
    #[default]
    Off,
    /// Append-only change log only: every input event is written ahead of
    /// being applied, so recovery replays the whole run from the log.
    LogOnly,
    /// Change log plus per-partition snapshot files at collection
    /// safepoints.
    SnapshotAndLog,
}

/// Configuration of the durable storage backend for one run (one data
/// directory per shard/stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// What to persist.
    pub mode: DurabilityMode,
    /// The data directory (created on first use; must not already hold a
    /// manifest from a previous run).
    pub dir: PathBuf,
    /// Fsync the log after this many event frames (`0` — the batched
    /// default — syncs only at snapshot generations, segment rotation,
    /// and shutdown; every safepoint still *flushes* to the OS, which is
    /// enough to survive a process kill — fsync buys power-loss
    /// durability).
    pub fsync_every: u64,
    /// Write a snapshot generation every this many collection safepoints
    /// (`SnapshotAndLog` only; a final generation is always written at
    /// clean shutdown).
    pub snapshot_every: u64,
    /// Rotate to a new log segment once the current one reaches this many
    /// bytes (checked at safepoints).
    pub segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl DurabilityConfig {
    /// Durability disabled (the default): no directory is touched.
    pub fn off() -> Self {
        Self {
            mode: DurabilityMode::Off,
            dir: PathBuf::new(),
            fsync_every: 0,
            snapshot_every: 16,
            segment_bytes: 4 << 20,
        }
    }

    /// Change log only, rooted at `dir`.
    pub fn log_only(dir: impl Into<PathBuf>) -> Self {
        Self {
            mode: DurabilityMode::LogOnly,
            dir: dir.into(),
            ..Self::off()
        }
    }

    /// Change log plus per-partition snapshots, rooted at `dir`.
    pub fn snapshot_and_log(dir: impl Into<PathBuf>) -> Self {
        Self {
            mode: DurabilityMode::SnapshotAndLog,
            dir: dir.into(),
            ..Self::off()
        }
    }

    /// Sets the fsync batching interval (frames; `0` = snapshot
    /// generations, rotation, and shutdown only).
    #[must_use]
    pub fn with_fsync_every(mut self, frames: u64) -> Self {
        self.fsync_every = frames;
        self
    }

    /// Sets the snapshot cadence in collection safepoints (clamped ≥ 1).
    #[must_use]
    pub fn with_snapshot_every(mut self, safepoints: u64) -> Self {
        self.snapshot_every = safepoints.max(1);
        self
    }

    /// Sets the log segment rotation threshold in bytes (clamped ≥ 4 KiB).
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(4 << 10);
        self
    }

    /// True unless the mode is [`DurabilityMode::Off`].
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mode != DurabilityMode::Off
    }

    /// True when per-partition snapshots are written.
    #[inline]
    pub fn snapshots_enabled(&self) -> bool {
        self.mode == DurabilityMode::SnapshotAndLog
    }

    /// The data directory.
    #[inline]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
