//! Per-partition snapshot files: `snap-GGGGGGGG-pPPPPPP.pgcs`.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header:  magic "PGCS" | version u32 | generation u64 | partition u32
//!          | events_applied u64 | collections u64
//!          | record_count u32 | live_bytes u64
//! record*: len u32 | oid u64 | size u64 | weight u8 | birth u64
//!          | slot_count u32 | slot*: u64 (oid + 1; 0 encodes None)
//! footer:  crc32 u32 over every preceding byte
//! ```
//!
//! Records are sorted by oid (canonical form — the in-memory member list
//! is swap-ordered), and each carries its own length prefix so future
//! versions can extend records without breaking old readers. A snapshot is
//! written to a `.tmp` sibling, fsynced, then renamed into place: a torn
//! snapshot write never shadows an older valid generation.

use crate::crc::crc32;
use pgc_odb::Database;
use pgc_types::{PartitionId, PgcError, Result};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

pub(crate) const MAGIC: &[u8; 4] = b"PGCS";
pub(crate) const VERSION: u32 = 1;

fn io_err(e: std::io::Error) -> PgcError {
    PgcError::TraceIo(e.to_string())
}

/// File name of partition `partition`'s snapshot in `generation`.
pub fn snapshot_name(generation: u64, partition: u32) -> String {
    format!("snap-{generation:08}-p{partition:06}.pgcs")
}

/// One live object as captured in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// The object id.
    pub oid: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Root-distance weight.
    pub weight: u8,
    /// Logical creation time (allocation clock).
    pub birth: u64,
    /// Pointer slots (`None` = empty slot).
    pub slots: Vec<Option<u64>>,
}

/// One partition's state at a collection safepoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSnapshot {
    /// Snapshot generation (1-based, monotone per run).
    pub generation: u64,
    /// The partition this file covers.
    pub partition: u32,
    /// Events applied when the snapshot was taken.
    pub events_applied: u64,
    /// Collections completed when the snapshot was taken.
    pub collections: u64,
    /// Sum of member sizes (redundant with the records; cross-checked on
    /// read).
    pub live_bytes: u64,
    /// The partition's members, sorted by oid.
    pub records: Vec<SnapshotRecord>,
}

impl PartitionSnapshot {
    /// Captures `partition`'s current members from `db`.
    pub fn capture(
        db: &Database,
        partition: PartitionId,
        generation: u64,
        events_applied: u64,
        collections: u64,
    ) -> Result<Self> {
        let mut oids: Vec<_> = db.objects().members(partition).collect();
        oids.sort_unstable_by_key(|oid| oid.index());
        let mut records = Vec::with_capacity(oids.len());
        let mut live_bytes = 0u64;
        for oid in oids {
            let rec = db.objects().get(oid)?;
            live_bytes += rec.size.get();
            records.push(SnapshotRecord {
                oid: oid.index(),
                size: rec.size.get(),
                weight: rec.weight,
                birth: rec.birth,
                slots: rec.slots.iter().map(|s| s.map(|o| o.index())).collect(),
            });
        }
        Ok(Self {
            generation,
            partition: partition.as_usize() as u32,
            events_applied,
            collections,
            live_bytes,
            records,
        })
    }

    /// Serializes to the checksummed file form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.records.len() * 48);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&self.partition.to_le_bytes());
        buf.extend_from_slice(&self.events_applied.to_le_bytes());
        buf.extend_from_slice(&self.collections.to_le_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.live_bytes.to_le_bytes());
        for rec in &self.records {
            let body_len = 8 + 8 + 1 + 8 + 4 + rec.slots.len() * 8;
            buf.extend_from_slice(&(body_len as u32).to_le_bytes());
            buf.extend_from_slice(&rec.oid.to_le_bytes());
            buf.extend_from_slice(&rec.size.to_le_bytes());
            buf.push(rec.weight);
            buf.extend_from_slice(&rec.birth.to_le_bytes());
            buf.extend_from_slice(&(rec.slots.len() as u32).to_le_bytes());
            for slot in &rec.slots {
                buf.extend_from_slice(&slot.map_or(0, |o| o + 1).to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and verifies the checksummed file form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let bad = |reason: &str| PgcError::TraceFormat(format!("snapshot: {reason}"));
        if bytes.len() < 48 + 4 || &bytes[..4] != MAGIC {
            return Err(bad("bad or missing header"));
        }
        let (body, footer) = bytes.split_at(bytes.len() - 4);
        let stated = u32::from_le_bytes(footer.try_into().unwrap());
        if crc32(body) != stated {
            return Err(bad("checksum mismatch"));
        }
        let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(bad(&format!("unsupported version {version}")));
        }
        let generation = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let partition = u32::from_le_bytes(body[16..20].try_into().unwrap());
        let events_applied = u64::from_le_bytes(body[20..28].try_into().unwrap());
        let collections = u64::from_le_bytes(body[28..36].try_into().unwrap());
        let record_count = u32::from_le_bytes(body[36..40].try_into().unwrap()) as usize;
        let live_bytes = u64::from_le_bytes(body[40..48].try_into().unwrap());
        let mut pos = 48usize;
        let mut records = Vec::with_capacity(record_count);
        let mut summed = 0u64;
        for _ in 0..record_count {
            if body.len() - pos < 4 {
                return Err(bad("truncated record length"));
            }
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if body.len() - pos < len || len < 8 + 8 + 1 + 8 + 4 {
                return Err(bad("truncated record body"));
            }
            let rec = &body[pos..pos + len];
            let oid = u64::from_le_bytes(rec[..8].try_into().unwrap());
            let size = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            let weight = rec[16];
            let birth = u64::from_le_bytes(rec[17..25].try_into().unwrap());
            let slot_count = u32::from_le_bytes(rec[25..29].try_into().unwrap()) as usize;
            if len != 29 + slot_count * 8 {
                return Err(bad("record length disagrees with slot count"));
            }
            let slots = rec[29..]
                .chunks_exact(8)
                .map(|c| {
                    let raw = u64::from_le_bytes(c.try_into().unwrap());
                    (raw != 0).then(|| raw - 1)
                })
                .collect();
            summed += size;
            records.push(SnapshotRecord {
                oid,
                size,
                weight,
                birth,
                slots,
            });
            pos += len;
        }
        if pos != body.len() {
            return Err(bad("trailing bytes after records"));
        }
        if summed != live_bytes {
            return Err(bad("live_bytes disagrees with records"));
        }
        Ok(Self {
            generation,
            partition,
            events_applied,
            collections,
            live_bytes,
            records,
        })
    }

    /// Writes the snapshot into `dir` (temp file + fsync + rename).
    /// Returns the file size in bytes.
    pub fn write_to(&self, dir: &Path) -> Result<u64> {
        let bytes = self.to_bytes();
        let name = snapshot_name(self.generation, self.partition);
        let tmp = dir.join(format!("{name}.tmp"));
        let mut file = File::create(&tmp).map_err(io_err)?;
        file.write_all(&bytes).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
        drop(file);
        fs::rename(&tmp, dir.join(name)).map_err(io_err)?;
        Ok(bytes.len() as u64)
    }

    /// Compares the snapshot against `partition`'s live state in `db`.
    /// Returns a description of the first mismatch, if any.
    pub fn verify_against(&self, db: &Database) -> std::result::Result<(), String> {
        let partition = PartitionId(self.partition);
        let mut oids: Vec<_> = db.objects().members(partition).collect();
        oids.sort_unstable_by_key(|oid| oid.index());
        if oids.len() != self.records.len() {
            return Err(format!(
                "partition {partition}: snapshot has {} members, database has {}",
                self.records.len(),
                oids.len()
            ));
        }
        for (rec, oid) in self.records.iter().zip(oids) {
            if rec.oid != oid.index() {
                return Err(format!(
                    "partition {partition}: snapshot member o#{} vs database {oid}",
                    rec.oid
                ));
            }
            let live = match db.objects().get(oid) {
                Ok(live) => live,
                Err(e) => return Err(format!("{oid}: {e}")),
            };
            let slots_match = live.slots.len() == rec.slots.len()
                && live
                    .slots
                    .iter()
                    .zip(&rec.slots)
                    .all(|(a, b)| a.map(|o| o.index()) == *b);
            if live.size.get() != rec.size
                || live.weight != rec.weight
                || live.birth != rec.birth
                || !slots_match
            {
                return Err(format!("{oid}: snapshot record diverges from database"));
            }
        }
        Ok(())
    }
}

/// Reads and verifies one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<PartitionSnapshot> {
    PartitionSnapshot::from_bytes(&fs::read(path).map_err(io_err)?)
}

/// A snapshot file found in a data directory (not yet validated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFile {
    /// Generation parsed from the file name.
    pub generation: u64,
    /// Partition parsed from the file name.
    pub partition: u32,
    /// Full path.
    pub path: PathBuf,
}

/// Lists the snapshot files under `dir`, sorted by (generation,
/// partition). Stray `.tmp` files from an interrupted write are ignored.
pub fn scan_snapshots(dir: &Path) -> Result<Vec<SnapshotFile>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".pgcs"))
        else {
            continue;
        };
        let Some((gen_str, part_str)) = stem.split_once("-p") else {
            continue;
        };
        if let (Ok(generation), Ok(partition)) = (gen_str.parse(), part_str.parse()) {
            found.push(SnapshotFile {
                generation,
                partition,
                path: entry.path(),
            });
        }
    }
    found.sort_by_key(|f| (f.generation, f.partition));
    Ok(found)
}

/// Deletes snapshot files older than `keep_from` generations (called after
/// a new generation lands, so the directory holds a bounded number).
pub(crate) fn prune_below(dir: &Path, keep_from: u64) -> Result<()> {
    for file in scan_snapshots(dir)? {
        if file.generation < keep_from {
            fs::remove_file(&file.path).map_err(io_err)?;
        }
    }
    Ok(())
}
