//! The checksummed run manifest: `MANIFEST.pgc`.
//!
//! A tiny ordered key=value text format so recovery can rebuild the exact
//! run configuration without out-of-band knowledge:
//!
//! ```text
//! pgc-manifest v1
//! <key> = <value>
//! ...
//! crc = <crc32 of everything above, lowercase hex>
//! ```
//!
//! Values that must round-trip exactly (the workload's probability knobs)
//! are stored as `f64::to_bits` hex, never as decimal floats.

use crate::crc::crc32;
use pgc_types::{PgcError, Result};
use std::fmt::Display;
use std::fs;
use std::path::Path;

/// File name of the manifest inside a data directory.
pub const MANIFEST_FILE: &str = "MANIFEST.pgc";

const HEADER: &str = "pgc-manifest v1";

/// An ordered key=value manifest with a whole-file checksum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    entries: Vec<(String, String)>,
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends (or replaces) `key` with `value`'s display form.
    pub fn set(&mut self, key: &str, value: impl Display) {
        let value = value.to_string();
        debug_assert!(!key.contains('=') && !key.contains('\n'));
        debug_assert!(!value.contains('\n'));
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Stores an `f64` by bit pattern (exact round-trip).
    pub fn set_f64(&mut self, key: &str, value: f64) {
        self.set(key, format!("{:016x}", value.to_bits()));
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up `key` or fails with a format error naming it.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| PgcError::TraceFormat(format!("manifest: missing key `{key}`")))
    }

    /// Parses `key` as a `u64`.
    pub fn require_u64(&self, key: &str) -> Result<u64> {
        self.require(key)?
            .parse()
            .map_err(|_| PgcError::TraceFormat(format!("manifest: `{key}` is not an integer")))
    }

    /// Parses `key` as an `f64` stored by bit pattern.
    pub fn require_f64(&self, key: &str) -> Result<f64> {
        let bits = u64::from_str_radix(self.require(key)?, 16)
            .map_err(|_| PgcError::TraceFormat(format!("manifest: `{key}` is not f64 bits")))?;
        Ok(f64::from_bits(bits))
    }

    /// Serializes to the checksummed text form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::from(HEADER);
        body.push('\n');
        for (k, v) in &self.entries {
            body.push_str(k);
            body.push_str(" = ");
            body.push_str(v);
            body.push('\n');
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc = {crc:08x}\n"));
        body.into_bytes()
    }

    /// Parses the checksummed text form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| PgcError::TraceFormat("manifest: not utf-8".into()))?;
        let body_end = text
            .rfind("crc = ")
            .ok_or_else(|| PgcError::TraceFormat("manifest: missing checksum line".into()))?;
        let (body, crc_line) = text.split_at(body_end);
        let stated = crc_line
            .trim()
            .strip_prefix("crc = ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| PgcError::TraceFormat("manifest: bad checksum line".into()))?;
        if crc32(body.as_bytes()) != stated {
            return Err(PgcError::TraceFormat("manifest: checksum mismatch".into()));
        }
        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(PgcError::TraceFormat("manifest: bad header".into()));
        }
        let mut entries = Vec::new();
        for line in lines {
            let (k, v) = line
                .split_once(" = ")
                .ok_or_else(|| PgcError::TraceFormat("manifest: malformed entry".into()))?;
            entries.push((k.to_string(), v.to_string()));
        }
        Ok(Self { entries })
    }

    /// Writes `MANIFEST.pgc` into `dir` (temp file + rename).
    pub fn write_to(&self, dir: &Path) -> Result<()> {
        let tmp = dir.join("MANIFEST.pgc.tmp");
        let path = dir.join(MANIFEST_FILE);
        fs::write(&tmp, self.to_bytes()).map_err(io_err)?;
        fs::rename(&tmp, &path).map_err(io_err)?;
        Ok(())
    }

    /// Reads and verifies `MANIFEST.pgc` from `dir`.
    pub fn read_from(dir: &Path) -> Result<Self> {
        let bytes = fs::read(dir.join(MANIFEST_FILE)).map_err(io_err)?;
        Self::from_bytes(&bytes)
    }
}

fn io_err(e: std::io::Error) -> PgcError {
    PgcError::TraceIo(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::ScratchDir;

    #[test]
    fn round_trips_entries_and_float_bits() {
        let mut m = Manifest::new();
        m.set("policy", "MostGarbage");
        m.set("seed", 7u64);
        m.set_f64("p_delete", 0.1234567890123_f64);
        let back = Manifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.require("policy").unwrap(), "MostGarbage");
        assert_eq!(back.require_u64("seed").unwrap(), 7);
        assert_eq!(
            back.require_f64("p_delete").unwrap().to_bits(),
            0.1234567890123_f64.to_bits()
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut m = Manifest::new();
        m.set("k", 1u32);
        m.set("k", 2u32);
        assert_eq!(m.get("k"), Some("2"));
    }

    #[test]
    fn corruption_is_detected() {
        let mut m = Manifest::new();
        m.set("seed", 7u64);
        let mut bytes = m.to_bytes();
        let flip = bytes.iter().position(|&b| b == b'7').unwrap();
        bytes[flip] = b'8';
        assert!(Manifest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = ScratchDir::new("manifest");
        let mut m = Manifest::new();
        m.set("seed", 3u64);
        m.write_to(dir.path()).unwrap();
        assert_eq!(Manifest::read_from(dir.path()).unwrap(), m);
    }
}
