//! Compact event codec for change-log frames.
//!
//! The change log is write-amplification-sensitive: every byte is
//! checksummed, copied through the kernel, and eventually fsynced, so
//! the log uses a tighter encoding than the PGCT trace format. Node
//! ids in practice are small sequential counters, so each event tag has
//! a narrow form with `u32` ids; the rare event touching an id (or
//! byte size) that does not fit gets the same layout with the
//! [`WIDE`] bit set and `u64` ids / `u64` sizes. Replay decodes both,
//! so the compaction is invisible above [`crate::log::read_log`].
//!
//! ```text
//! tag u8 (| WIDE) | fields (little-endian, fixed width per tag)
//! ```

use pgc_types::{Bytes, PgcError, Result};
use pgc_workload::{Event, NodeId};

const TAG_CREATE_ROOT: u8 = 1;
const TAG_CREATE_CHILD: u8 = 2;
const TAG_WRITE_POINTER: u8 = 3;
const TAG_ADD_SLOT: u8 = 4;
const TAG_VISIT: u8 = 5;
const TAG_DATA_WRITE: u8 = 6;

/// Tag bit marking the wide (`u64` ids and sizes) form of an event.
const WIDE: u8 = 0x80;

const NARROW: u64 = u32::MAX as u64;

/// Appends one event's compact encoding to `buf`. The event is staged
/// in a fixed stack buffer so the `Vec` pays one capacity check per
/// event, not one per field.
pub(crate) fn encode_compact(buf: &mut Vec<u8>, event: &Event) {
    let mut tmp = [0u8; 41];
    let len = match *event {
        Event::CreateRoot { node, size, slots } => {
            if node.0 <= NARROW && size.get() <= NARROW {
                tmp[0] = TAG_CREATE_ROOT;
                tmp[1..5].copy_from_slice(&(node.0 as u32).to_le_bytes());
                tmp[5..9].copy_from_slice(&(size.get() as u32).to_le_bytes());
                tmp[9..11].copy_from_slice(&slots.to_le_bytes());
                11
            } else {
                tmp[0] = TAG_CREATE_ROOT | WIDE;
                tmp[1..9].copy_from_slice(&node.0.to_le_bytes());
                tmp[9..17].copy_from_slice(&size.get().to_le_bytes());
                tmp[17..19].copy_from_slice(&slots.to_le_bytes());
                19
            }
        }
        Event::CreateChild {
            node,
            parent,
            parent_slot,
            size,
            slots,
        } => {
            if node.0 <= NARROW && parent.0 <= NARROW && size.get() <= NARROW {
                tmp[0] = TAG_CREATE_CHILD;
                tmp[1..5].copy_from_slice(&(node.0 as u32).to_le_bytes());
                tmp[5..9].copy_from_slice(&(parent.0 as u32).to_le_bytes());
                tmp[9..11].copy_from_slice(&parent_slot.to_le_bytes());
                tmp[11..15].copy_from_slice(&(size.get() as u32).to_le_bytes());
                tmp[15..17].copy_from_slice(&slots.to_le_bytes());
                17
            } else {
                tmp[0] = TAG_CREATE_CHILD | WIDE;
                tmp[1..9].copy_from_slice(&node.0.to_le_bytes());
                tmp[9..17].copy_from_slice(&parent.0.to_le_bytes());
                tmp[17..19].copy_from_slice(&parent_slot.to_le_bytes());
                tmp[19..27].copy_from_slice(&size.get().to_le_bytes());
                tmp[27..29].copy_from_slice(&slots.to_le_bytes());
                29
            }
        }
        Event::WritePointer { owner, slot, new } => {
            let new_id = new.map_or(0, |t| t.0);
            if owner.0 <= NARROW && new_id <= NARROW {
                tmp[0] = TAG_WRITE_POINTER;
                tmp[1..5].copy_from_slice(&(owner.0 as u32).to_le_bytes());
                tmp[5..7].copy_from_slice(&slot.to_le_bytes());
                match new {
                    Some(t) => {
                        tmp[7] = 1;
                        tmp[8..12].copy_from_slice(&(t.0 as u32).to_le_bytes());
                        12
                    }
                    None => {
                        tmp[7] = 0;
                        8
                    }
                }
            } else {
                tmp[0] = TAG_WRITE_POINTER | WIDE;
                tmp[1..9].copy_from_slice(&owner.0.to_le_bytes());
                tmp[9..11].copy_from_slice(&slot.to_le_bytes());
                match new {
                    Some(t) => {
                        tmp[11] = 1;
                        tmp[12..20].copy_from_slice(&t.0.to_le_bytes());
                        20
                    }
                    None => {
                        tmp[11] = 0;
                        12
                    }
                }
            }
        }
        Event::AddSlot { owner } => encode_id(&mut tmp, TAG_ADD_SLOT, owner.0),
        Event::Visit { node } => encode_id(&mut tmp, TAG_VISIT, node.0),
        Event::DataWrite { node } => encode_id(&mut tmp, TAG_DATA_WRITE, node.0),
    };
    buf.extend_from_slice(&tmp[..len]);
}

#[inline]
fn encode_id(tmp: &mut [u8; 41], tag: u8, id: u64) -> usize {
    if id <= NARROW {
        tmp[0] = tag;
        tmp[1..5].copy_from_slice(&(id as u32).to_le_bytes());
        5
    } else {
        tmp[0] = tag | WIDE;
        tmp[1..9].copy_from_slice(&id.to_le_bytes());
        9
    }
}

#[inline]
fn short() -> PgcError {
    PgcError::TraceFormat("truncated compact event".into())
}

#[inline]
fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let bytes = buf
        .get(*pos..*pos + N)
        .ok_or_else(short)?
        .try_into()
        .expect("slice has length N");
    *pos += N;
    Ok(bytes)
}

#[inline]
fn take_id(buf: &[u8], pos: &mut usize, wide: bool) -> Result<u64> {
    Ok(if wide {
        u64::from_le_bytes(take::<8>(buf, pos)?)
    } else {
        u32::from_le_bytes(take::<4>(buf, pos)?) as u64
    })
}

#[inline]
fn take_u16(buf: &[u8], pos: &mut usize) -> Result<u16> {
    Ok(u16::from_le_bytes(take::<2>(buf, pos)?))
}

/// Decodes one compact event starting at `pos`, advancing `pos` past
/// it. Returns `None` when `pos` is exactly at the end of `buf`.
pub(crate) fn decode_compact(buf: &[u8], pos: &mut usize) -> Result<Option<Event>> {
    if *pos == buf.len() {
        return Ok(None);
    }
    let tag = buf[*pos];
    *pos += 1;
    let wide = tag & WIDE != 0;
    let event = match tag & !WIDE {
        TAG_CREATE_ROOT => Event::CreateRoot {
            node: NodeId(take_id(buf, pos, wide)?),
            size: Bytes(take_id(buf, pos, wide)?),
            slots: take_u16(buf, pos)?,
        },
        TAG_CREATE_CHILD => Event::CreateChild {
            node: NodeId(take_id(buf, pos, wide)?),
            parent: NodeId(take_id(buf, pos, wide)?),
            parent_slot: take_u16(buf, pos)?,
            size: Bytes(take_id(buf, pos, wide)?),
            slots: take_u16(buf, pos)?,
        },
        TAG_WRITE_POINTER => {
            let owner = NodeId(take_id(buf, pos, wide)?);
            let slot = take_u16(buf, pos)?;
            let new = match take::<1>(buf, pos)?[0] {
                0 => None,
                1 => Some(NodeId(take_id(buf, pos, wide)?)),
                other => {
                    return Err(PgcError::TraceFormat(format!(
                        "bad pointer-presence byte {other}"
                    )));
                }
            };
            Event::WritePointer { owner, slot, new }
        }
        TAG_ADD_SLOT => Event::AddSlot {
            owner: NodeId(take_id(buf, pos, wide)?),
        },
        TAG_VISIT => Event::Visit {
            node: NodeId(take_id(buf, pos, wide)?),
        },
        TAG_DATA_WRITE => Event::DataWrite {
            node: NodeId(take_id(buf, pos, wide)?),
        },
        other => {
            return Err(PgcError::TraceFormat(format!(
                "unknown compact event tag {other}"
            )));
        }
    };
    Ok(Some(event))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(events: &[Event]) {
        let mut buf = Vec::new();
        for e in events {
            encode_compact(&mut buf, e);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while let Some(e) = decode_compact(&buf, &mut pos).unwrap() {
            back.push(e);
        }
        assert_eq!(back, events);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn narrow_and_wide_forms_round_trip() {
        let wide_id = u32::MAX as u64 + 1;
        round_trip(&[
            Event::CreateRoot {
                node: NodeId(0),
                size: Bytes(64),
                slots: 3,
            },
            Event::CreateRoot {
                node: NodeId(wide_id),
                size: Bytes(u32::MAX as u64 + 7),
                slots: u16::MAX,
            },
            Event::CreateChild {
                node: NodeId(u32::MAX as u64),
                parent: NodeId(17),
                parent_slot: 2,
                size: Bytes(128),
                slots: 4,
            },
            Event::CreateChild {
                node: NodeId(1),
                parent: NodeId(wide_id),
                parent_slot: u16::MAX,
                size: Bytes(1),
                slots: 0,
            },
            Event::WritePointer {
                owner: NodeId(9),
                slot: 1,
                new: Some(NodeId(11)),
            },
            Event::WritePointer {
                owner: NodeId(9),
                slot: 1,
                new: None,
            },
            Event::WritePointer {
                owner: NodeId(wide_id),
                slot: 0,
                new: None,
            },
            Event::WritePointer {
                owner: NodeId(3),
                slot: 0,
                new: Some(NodeId(wide_id)),
            },
            Event::AddSlot { owner: NodeId(5) },
            Event::Visit { node: NodeId(123) },
            Event::Visit {
                node: NodeId(u64::MAX),
            },
            Event::DataWrite { node: NodeId(0) },
        ]);
    }

    #[test]
    fn common_events_encode_small() {
        let mut buf = Vec::new();
        encode_compact(
            &mut buf,
            &Event::Visit {
                node: NodeId(100_000),
            },
        );
        assert_eq!(buf.len(), 5, "narrow visit is tag + u32");
    }

    #[test]
    fn truncation_and_bad_tags_are_errors_not_panics() {
        let mut buf = Vec::new();
        encode_compact(
            &mut buf,
            &Event::CreateChild {
                node: NodeId(1),
                parent: NodeId(2),
                parent_slot: 0,
                size: Bytes(64),
                slots: 2,
            },
        );
        for cut in 1..buf.len() {
            let mut pos = 0;
            assert!(decode_compact(&buf[..cut], &mut pos).is_err());
        }
        let mut pos = 0;
        assert!(decode_compact(&[0xFF, 0, 0, 0, 0], &mut pos).is_err());
        assert!(decode_compact(&[7, 0, 0, 0, 0], &mut pos).is_err());
    }
}
